// Copyright (c) 2026 The siri Authors. MIT license.
//
// Content-addressed node store: idempotent puts, statistics, page-set
// accounting, sharding, batched writes (PutMany + staging), and fault
// injection plumbing.

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "crypto/sha256.h"
#include "store/node_store.h"
#include "store/staging_store.h"

namespace siri {
namespace {

NodeRecord RecordOf(const std::string& bytes) {
  NodeRecord rec;
  rec.bytes = std::make_shared<const std::string>(bytes);
  rec.hash = Sha256::Digest(*rec.bytes);
  return rec;
}

TEST(NodeStoreTest, PutReturnsContentDigest) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("hello node");
  EXPECT_EQ(h, Sha256::Digest("hello node"));
}

TEST(NodeStoreTest, GetReturnsStoredBytes) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("payload");
  auto got = store->Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "payload");
}

TEST(NodeStoreTest, GetMissingIsNotFound) {
  auto store = NewInMemoryNodeStore();
  auto got = store->Get(Sha256::Digest("never stored"));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(NodeStoreTest, DuplicatePutIsDeduplicated) {
  auto store = NewInMemoryNodeStore();
  // Digests dropped: the dedup accounting in stats() is the subject.
  (void)store->Put("same");
  (void)store->Put("same");
  (void)store->Put("same");
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.dup_puts, 2u);
  EXPECT_EQ(stats.unique_nodes, 1u);
  EXPECT_EQ(stats.unique_bytes, 4u);
}

TEST(NodeStoreTest, StatsTrackBytes) {
  auto store = NewInMemoryNodeStore();
  // Digests dropped: the byte accounting in stats() is the subject.
  (void)store->Put(std::string(100, 'a'));
  (void)store->Put(std::string(50, 'b'));
  const auto stats = store->stats();
  EXPECT_EQ(stats.put_bytes, 150u);
  EXPECT_EQ(stats.unique_bytes, 150u);
}

TEST(NodeStoreTest, ResetOpCountersKeepsResidency) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put("x");
  (void)store->Get(h);
  store->ResetOpCounters();
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 0u);
  EXPECT_EQ(stats.gets, 0u);
  EXPECT_EQ(stats.unique_nodes, 1u);
  EXPECT_TRUE(store->Contains(h));
}

TEST(NodeStoreTest, SizeOfReportsSerializedSize) {
  auto store = NewInMemoryNodeStore();
  const Hash h = store->Put(std::string(321, 'z'));
  auto size = store->SizeOf(h);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 321u);
  EXPECT_FALSE(store->SizeOf(Sha256::Digest("absent")).ok());
}

TEST(NodeStoreTest, BytesOfSumsPageSet) {
  auto store = NewInMemoryNodeStore();
  PageSet pages;
  pages.insert(store->Put(std::string(10, 'a')));
  pages.insert(store->Put(std::string(20, 'b')));
  EXPECT_EQ(store->BytesOf(pages), 30u);
}

TEST(NodeStoreTest, ConcurrentPutsAndGetsAreSafe) {
  auto store = NewInMemoryNodeStore();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(t);
      for (int i = 0; i < 500; ++i) {
        const Hash h = store->Put(rng.Bytes(64));
        auto got = store->Get(h);
        ASSERT_TRUE(got.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store->stats().puts, 2000u);
}

// --- Sharding --------------------------------------------------------------

TEST(ShardedStoreTest, OneShardPreservesExactSemantics) {
  // num_shards = 1 is the pre-sharding store: one map, one lock. Contents
  // and statistics must match a default-sharded store given the same ops.
  auto one = NewInMemoryNodeStore(1);
  auto sharded = NewInMemoryNodeStore();
  ASSERT_EQ(one->num_shards(), 1);
  ASSERT_EQ(sharded->num_shards(), InMemoryNodeStore::kDefaultShards);

  std::vector<Hash> hashes;
  for (int i = 0; i < 100; ++i) {
    const std::string page = "page-" + std::to_string(i % 80);  // dups too
    EXPECT_EQ(one->Put(page), sharded->Put(page));
  }
  for (int i = 0; i < 80; ++i) {
    const Hash h = Sha256::Digest("page-" + std::to_string(i));
    hashes.push_back(h);
    ASSERT_TRUE(one->Get(h).ok());
    ASSERT_TRUE(sharded->Get(h).ok());
  }
  const auto a = one->stats();
  const auto b = sharded->stats();
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.dup_puts, b.dup_puts);
  EXPECT_EQ(a.unique_nodes, b.unique_nodes);
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.get_bytes, b.get_bytes);
}

TEST(ShardedStoreTest, CrossShardAccountingAndIteration) {
  // 200 SHA-256-distributed digests land in every shard of an 8-shard
  // store; the whole-store views (stats, BytesOf, PruneExcept) must stitch
  // the shards together correctly.
  auto store = NewInMemoryNodeStore(8);
  PageSet all;
  PageSet keep;
  uint64_t keep_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string page(64 + i % 7, static_cast<char>('a' + i % 26));
    const Hash h = store->Put(page + std::to_string(i));
    all.insert(h);
    if (i % 3 == 0) {
      keep.insert(h);
      keep_bytes += page.size() + std::to_string(i).size();
    }
  }
  ASSERT_EQ(store->stats().unique_nodes, 200u);
  EXPECT_EQ(store->BytesOf(all), store->stats().unique_bytes);
  EXPECT_EQ(store->BytesOf(keep), keep_bytes);

  const uint64_t dropped = store->PruneExcept(keep);
  EXPECT_EQ(dropped, 200u - keep.size());
  EXPECT_EQ(store->stats().unique_nodes, keep.size());
  EXPECT_EQ(store->stats().unique_bytes, keep_bytes);
  for (const Hash& h : keep) EXPECT_TRUE(store->Contains(h));
}

// --- PutMany ---------------------------------------------------------------

TEST(PutManyTest, EmptyBatchIsNoOp) {
  auto store = NewInMemoryNodeStore();
  store->PutMany({});
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 0u);
  EXPECT_EQ(stats.unique_nodes, 0u);
}

TEST(PutManyTest, StoresEveryNodeOfTheBatch) {
  auto store = NewInMemoryNodeStore();
  NodeBatch batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(RecordOf("batched-node-" + std::to_string(i)));
  }
  store->PutMany(batch);
  for (const NodeRecord& rec : batch) {
    auto got = store->Get(rec.hash);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(**got, *rec.bytes);
  }
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 50u);
  EXPECT_EQ(stats.dup_puts, 0u);
  EXPECT_EQ(stats.unique_nodes, 50u);
}

TEST(PutManyTest, DuplicateDigestsWithinBatchAreDeduplicated) {
  auto store = NewInMemoryNodeStore();
  (void)store->Put("resident");  // digest unused: dedup is the subject
  NodeBatch batch;
  batch.push_back(RecordOf("resident"));  // duplicates a stored node
  batch.push_back(RecordOf("new-node"));
  batch.push_back(RecordOf("new-node"));  // duplicate within the batch
  store->PutMany(batch);
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 4u);
  EXPECT_EQ(stats.dup_puts, 2u);
  EXPECT_EQ(stats.unique_nodes, 2u);
}

// --- StagingNodeStore ------------------------------------------------------

TEST(StagingStoreTest, StagedNodesInvisibleUntilFlush) {
  auto base = NewInMemoryNodeStore();
  StagingNodeStore staging(base.get());
  const Hash h = staging.Put("staged page");
  EXPECT_EQ(h, Sha256::Digest("staged page"));
  EXPECT_EQ(staging.staged_count(), 1u);

  // The staging view serves its own writes; the base store has nothing.
  auto got = staging.Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "staged page");
  EXPECT_TRUE(staging.Contains(h));
  ASSERT_TRUE(staging.SizeOf(h).ok());
  EXPECT_EQ(*staging.SizeOf(h), 11u);
  EXPECT_FALSE(base->Contains(h));
  EXPECT_EQ(base->stats().puts, 0u);

  staging.FlushBatch();
  EXPECT_EQ(staging.staged_count(), 0u);
  EXPECT_TRUE(base->Contains(h));
  EXPECT_EQ(base->stats().puts, 1u);

  // Flushing again is a no-op (no duplicate accounting).
  staging.FlushBatch();
  EXPECT_EQ(base->stats().puts, 1u);
}

TEST(StagingStoreTest, ReadsFallThroughToBase) {
  auto base = NewInMemoryNodeStore();
  const Hash resident = base->Put("already in base");
  StagingNodeStore staging(base.get());
  auto got = staging.Get(resident);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "already in base");
  EXPECT_TRUE(staging.Contains(resident));
}

TEST(StagingStoreTest, InBatchDuplicatesStagedOnce) {
  auto base = NewInMemoryNodeStore();
  StagingNodeStore staging(base.get());
  // Digests intentionally dropped: the subject is the staged_count/stats
  // accounting of duplicate stages, not the returned handles.
  (void)staging.Put("same bytes");
  (void)staging.Put("same bytes");
  EXPECT_EQ(staging.staged_count(), 1u);
  staging.FlushBatch();
  const auto stats = base->stats();
  EXPECT_EQ(stats.puts, 1u);
  EXPECT_EQ(stats.dup_puts, 0u);
  EXPECT_EQ(stats.unique_nodes, 1u);
}

TEST(StagingStoreTest, DroppedWithoutFlushLeavesBaseUntouched) {
  auto base = NewInMemoryNodeStore();
  Hash h;
  {
    StagingNodeStore staging(base.get());
    h = staging.Put("abandoned");
  }  // mutation failed: staged writes dropped
  EXPECT_FALSE(base->Contains(h));
  EXPECT_EQ(base->stats().puts, 0u);
}

TEST(StagingStoreTest, PutPagesMatchesSerialPutsExactly) {
  // Bulk staging through the SHA-256 pool must be indistinguishable from
  // per-page Put: same digests, same staged set, same flush result.
  std::vector<std::shared_ptr<const std::string>> pages;
  for (int i = 0; i < 120; ++i) {
    pages.push_back(std::make_shared<const std::string>(
        "bulk page " + std::to_string(i % 100)));  // includes duplicates
  }
  auto pooled = NewInMemoryNodeStore();
  {
    StagingNodeStore staging(pooled.get());
    const auto digests = staging.PutPages(pages);
    ASSERT_EQ(digests.size(), pages.size());
    for (size_t i = 0; i < pages.size(); ++i) {
      EXPECT_EQ(digests[i], Sha256::Digest(*pages[i]));
    }
    EXPECT_EQ(staging.staged_count(), 100u);  // duplicates staged once
    // Staged pages serve re-reads before the flush, like Put's.
    auto got = staging.Get(digests[0]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(**got, *pages[0]);
    staging.FlushBatch();
  }
  auto serial = NewInMemoryNodeStore();
  {
    StagingNodeStore staging(serial.get());
    // Digests dropped: the test compares store-level stats, not handles.
    for (const auto& p : pages) (void)staging.Put(*p);
    staging.FlushBatch();
  }
  EXPECT_EQ(pooled->stats().unique_nodes, serial->stats().unique_nodes);
  EXPECT_EQ(pooled->stats().unique_bytes, serial->stats().unique_bytes);
  EXPECT_EQ(pooled->stats().puts, serial->stats().puts);
}

TEST(NodeStoreTest, FlushCallsAreCountedAsDurabilityPoints) {
  auto store = NewInMemoryNodeStore();
  EXPECT_EQ(store->stats().flushes, 0u);
  ASSERT_TRUE(store->Flush().ok());
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->stats().flushes, 2u);
  store->ResetOpCounters();
  EXPECT_EQ(store->stats().flushes, 0u);
}

TEST(FaultyNodeStoreTest, CorruptNodeSurfacesCorruption) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.CorruptNode(h);
  auto got = faulty.Get(h);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

TEST(FaultyNodeStoreTest, DropNodeSurfacesNotFound) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.DropNode(h);
  EXPECT_FALSE(faulty.Contains(h));
  auto got = faulty.Get(h);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(FaultyNodeStoreTest, ClearFaultsRestoresAccess) {
  auto base = NewInMemoryNodeStore();
  FaultyNodeStore faulty(base);
  const Hash h = faulty.Put("data");
  faulty.CorruptNode(h);
  faulty.ClearFaults();
  auto got = faulty.Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "data");
}

}  // namespace
}  // namespace siri
