// Copyright (c) 2026 The siri Authors. MIT license.
//
// Optimistic concurrent branch commits: the head-CAS primitives of
// BranchManager and the CommitWithMerge retry driver (version/occ.h),
// exercised with hand-controlled interleavings — the race outcomes here
// are deterministic, not scheduler luck (the scheduler-driven companion
// lives in tests/concurrency_test.cc). Includes the conflict-path cost
// accounting: a losing CAS attempt writes nothing, flushes nothing, and
// ships nothing; the winning retry pays exactly one batch and one fsync.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "index/pos/pos_tree.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/commit.h"
#include "version/occ.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;

class OccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = std::make_unique<PosTree>(store_);
    mgr_ = std::make_unique<BranchManager>(store_);
    base_root_ = Put(index_->EmptyRoot(), MakeKvs(10));
  }

  Hash Put(const Hash& root, std::vector<KV> kvs) {
    auto r = index_->PutBatch(root, std::move(kvs));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  std::vector<KV> Keys(const std::string& prefix, int n) {
    std::vector<KV> kvs;
    for (int i = 0; i < n; ++i) {
      kvs.push_back(KV{prefix + "/" + std::to_string(i), "v" + prefix});
    }
    return kvs;
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<PosTree> index_;
  std::unique_ptr<BranchManager> mgr_;
  Hash base_root_;
};

TEST_F(OccTest, CompareAndSwapHeadCreatesMovesAndConflicts) {
  const Hash c1 = *mgr_->WriteCommit(Commit{base_root_, {}, "a", "1", 0});
  const Hash c2 = *mgr_->WriteCommit(Commit{base_root_, {c1}, "a", "2", 1});

  // Creation CAS: expected == nullopt means "must not exist yet".
  CasResult r = mgr_->CompareAndSwapHead("main", std::nullopt, c1);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.commit, c1);
  EXPECT_EQ(*mgr_->Head("main"), c1);

  // Creation CAS against an existing branch is a typed conflict.
  r = mgr_->CompareAndSwapHead("main", std::nullopt, c2);
  ASSERT_TRUE(r.status.IsConflict());
  ASSERT_TRUE(r.conflict.has_value());
  EXPECT_EQ(r.conflict->actual_head, c1);

  // Plain move.
  r = mgr_->CompareAndSwapHead("main", c1, c2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*mgr_->Head("main"), c2);

  // Stale expectation: typed conflict carrying the head that won.
  r = mgr_->CompareAndSwapHead("main", c1, c2);
  ASSERT_TRUE(r.status.IsConflict());
  EXPECT_EQ(r.conflict->actual_head, c2);

  // Missing branch with an expectation is NotFound, not a conflict.
  r = mgr_->CompareAndSwapHead("ghost", c1, c2);
  EXPECT_TRUE(r.status.IsNotFound());

  const BranchStats stats = mgr_->branch_stats("main");
  EXPECT_EQ(stats.commits, 2u);
  EXPECT_EQ(stats.cas_failures, 2u);
  EXPECT_EQ(stats.merge_retries, 0u);
}

TEST_F(OccTest, CommitOnBranchIfFailsFastOnStaleHead) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  const Hash root_a = Put(base_root_, Keys("a", 5));
  CasResult a = mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*mgr_->Head("main"), a.commit);

  // B still expects c0: typed conflict naming A's commit, and — fail-fast
  // path — not a single node written to the store.
  const Hash root_b = Put(base_root_, Keys("b", 5));
  const uint64_t puts_before = store_->stats().puts;
  CasResult b = mgr_->CommitOnBranchIf("main", *c0, root_b, "bob", "B");
  ASSERT_TRUE(b.status.IsConflict());
  EXPECT_EQ(b.conflict->actual_head, a.commit);
  EXPECT_EQ(store_->stats().puts, puts_before);
  EXPECT_EQ(*mgr_->Head("main"), a.commit);  // head untouched
}

// The ISSUE's deterministic interleaving: commit A lands between B's read
// of the head and B's CAS. First-committer-wins; B's retry produces a
// two-parent merge commit whose merge base is the old head; no author's
// keys are lost.
TEST_F(OccTest, DeterministicConflictFirstCommitterWinsLoserMerges) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());

  // B reads the head (c0) and builds its root on top of it...
  const Hash root_b = Put(base_root_, Keys("b", 5));

  // ...then A lands first.
  const Hash root_a = Put(base_root_, Keys("a", 5));
  CasResult a = mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A");
  ASSERT_TRUE(a.ok());

  // B's CAS is now stale; the driver must merge and retry.
  auto res = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b, "bob",
                             "B", *c0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->cas_failures, 1);
  EXPECT_EQ(res->merge_commits, 1);
  EXPECT_EQ(*mgr_->Head("main"), res->head);

  // The landed head is a two-parent merge: first parent the winner (the
  // branch's first-parent chain stays the commit order), second parent
  // B's content commit.
  auto merge = mgr_->ReadCommit(res->head);
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(merge->parents.size(), 2u);
  EXPECT_EQ(merge->parents[0], a.commit);
  EXPECT_EQ(merge->parents[1], res->commit);
  EXPECT_EQ(merge->sequence, 2u);

  // B's content commit is intact history: parent c0, root_b untouched.
  auto ours = mgr_->ReadCommit(res->commit);
  ASSERT_TRUE(ours.ok());
  ASSERT_EQ(ours->parents.size(), 1u);
  EXPECT_EQ(ours->parents[0], *c0);
  EXPECT_EQ(ours->root, root_b);

  // The merge base of the two sides is exactly the old head.
  auto mb = mgr_->MergeBase(a.commit, res->commit);
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(*mb, *c0);

  // Both authors' keys (and the base) are present in the final root.
  auto content = Dump(*index_, merge->root);
  for (const KV& kv : Keys("a", 5)) EXPECT_EQ(content.at(kv.key), kv.value);
  for (const KV& kv : Keys("b", 5)) EXPECT_EQ(content.at(kv.key), kv.value);
  for (const KV& kv : MakeKvs(10)) EXPECT_EQ(content.at(kv.key), kv.value);

  const BranchStats stats = mgr_->branch_stats("main");
  EXPECT_EQ(stats.commits, 3u);  // c0, A, merge
  EXPECT_EQ(stats.cas_failures, 1u);
  EXPECT_EQ(stats.merge_retries, 1u);
}

// A second winner lands while B is busy computing its first merge: the
// attempt is dropped (staged nodes never reach the store) and the next
// retry merges against the newest head.
TEST_F(OccTest, SecondRaceDuringMergeRetryIsAlsoAbsorbed) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());
  const Hash root_b = Put(base_root_, Keys("b", 4));
  const Hash root_a = Put(base_root_, Keys("a", 4));
  CasResult a = mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A");
  ASSERT_TRUE(a.ok());

  MergeCommitOptions opts;
  Hash second_winner;
  opts.on_retry = [&](int retry, const Hash& winner) {
    if (retry != 0) return;
    EXPECT_EQ(winner, a.commit);
    // C lands on top of A (building on A's root, as a well-behaved writer
    // does) while B prepares its first merge attempt.
    const Hash root_c = Put(root_a, Keys("c", 4));
    CasResult c = mgr_->CommitOnBranchIf("main", a.commit, root_c, "carol",
                                         "C");
    ASSERT_TRUE(c.ok());
    second_winner = c.commit;
  };
  auto res = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b, "bob",
                             "B", *c0, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->cas_failures, 2);   // fast path + first merge attempt
  EXPECT_EQ(res->merge_commits, 1);  // only the landed merge exists

  auto merge = mgr_->ReadCommit(res->head);
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(merge->parents.size(), 2u);
  EXPECT_EQ(merge->parents[0], second_winner);

  auto content = Dump(*index_, merge->root);
  for (const char* p : {"a", "b", "c"}) {
    for (const KV& kv : Keys(p, 4)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
}

TEST_F(OccTest, ExhaustedRetriesReturnConflictAndDroppedAttemptsWriteNothing) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());
  const Hash root_b = Put(base_root_, Keys("b", 4));
  const Hash root_a = Put(base_root_, Keys("a", 4));
  ASSERT_TRUE(mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A").ok());

  MergeCommitOptions opts;
  opts.max_retries = 2;
  opts.backoff_init_micros = 0;
  int hook_commits = 0;
  opts.on_retry = [&](int, const Hash&) {
    // An adversary lands a commit before every one of B's merge attempts.
    // Re-using base_root_ keeps the hook's cost to exactly one commit
    // object, so the put delta below isolates B's dropped attempts.
    auto head = mgr_->Head("main");
    ASSERT_TRUE(head.ok());
    ASSERT_TRUE(
        mgr_->CommitOnBranchIf("main", *head, base_root_, "adv", "spoil").ok());
    ++hook_commits;
  };

  const uint64_t puts_before = store_->stats().puts;
  auto res = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b, "bob",
                             "B", *c0, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsConflict());
  EXPECT_EQ(hook_commits, 2);
  // Every dropped merge attempt staged its nodes and dropped them: the
  // only store writes are the adversary's two commit objects.
  EXPECT_EQ(store_->stats().puts - puts_before,
            static_cast<uint64_t>(hook_commits));
}

TEST_F(OccTest, DivergentKeyNeedsResolverThenMergesWithOne) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());
  const Hash root_b = Put(base_root_, {{"shared", "bob's"}});
  const Hash root_a = Put(base_root_, {{"shared", "alice's"}});
  CasResult a = mgr_->CommitOnBranchIf("main", *c0, root_a, "alice", "A");
  ASSERT_TRUE(a.ok());

  // Without a resolver the race on "shared" aborts with Conflict and the
  // branch stays at A.
  auto res = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b, "bob",
                             "B", *c0);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsConflict());
  EXPECT_EQ(*mgr_->Head("main"), a.commit);

  // With ours-wins resolution B's value lands in the merged root.
  MergeCommitOptions opts;
  opts.resolver = [](const std::string&, const std::optional<std::string>& o,
                     const std::optional<std::string>&) { return o; };
  res = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b, "bob", "B",
                        *c0, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto merge = mgr_->ReadCommit(res->head);
  ASSERT_TRUE(merge.ok());
  auto got = index_->Get(merge->root, "shared", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "bob's");
}

TEST_F(OccTest, RacingBranchCreationMergesFromEmptyBase) {
  // Both writers believe they are creating the branch.
  const Hash root_a = Put(index_->EmptyRoot(), Keys("a", 3));
  const Hash root_b = Put(index_->EmptyRoot(), Keys("b", 3));
  auto a = CommitWithMerge(mgr_.get(), index_.get(), "fresh", root_a, "alice",
                           "A", std::nullopt);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->merge_commits, 0);

  auto b = CommitWithMerge(mgr_.get(), index_.get(), "fresh", root_b, "bob",
                           "B", std::nullopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->merge_commits, 1);

  auto merge = mgr_->ReadCommit(b->head);
  ASSERT_TRUE(merge.ok());
  ASSERT_EQ(merge->parents.size(), 2u);
  EXPECT_EQ(merge->parents[0], a->head);
  auto ours = mgr_->ReadCommit(b->commit);
  ASSERT_TRUE(ours.ok());
  EXPECT_TRUE(ours->parents.empty());  // a creation commit has no parent

  auto content = Dump(*index_, merge->root);
  for (const char* p : {"a", "b"}) {
    for (const KV& kv : Keys(p, 3)) EXPECT_EQ(content.at(kv.key), kv.value);
  }
}

// A lost-ack replay: the identical (root, expected_head, author, message)
// arrives again after the original execution landed — the transport does
// this when its ambiguity probes raced the original still sitting inside
// a combine window or CAS retry. The content commit is deterministic, so
// the retry driver finds it already reachable from the head and returns
// the original landing WITHOUT executing: exactly-once, no new commits,
// head untouched.
TEST_F(OccTest, ReplayOfLandedPublishDeduplicatesInsteadOfReExecuting) {
  auto c0 = mgr_->CommitOnBranch("main", base_root_, "init", "base");
  ASSERT_TRUE(c0.ok());
  const Hash root_b = Put(base_root_, Keys("b", 5));

  auto first = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b,
                               "bob", "B", *c0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->already_applied);
  const Hash head_after = *mgr_->Head("main");
  const uint64_t commits_before = mgr_->branch_stats("main").commits;

  auto replay = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b,
                                "bob", "B", *c0);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->already_applied);
  EXPECT_EQ(replay->commit, first->commit);
  EXPECT_EQ(replay->head, head_after);
  EXPECT_EQ(replay->merge_commits, 0);
  EXPECT_EQ(replay->staged, nullptr);
  EXPECT_EQ(*mgr_->Head("main"), head_after);
  EXPECT_EQ(mgr_->branch_stats("main").commits, commits_before);

  // Replays keep resolving after more history lands on top: the
  // sequence-pruned walk descends past the newer commits to the landing.
  auto more = CommitWithMerge(mgr_.get(), index_.get(), "main",
                              Put(base_root_, Keys("a", 3)), "alice", "A",
                              head_after);
  ASSERT_TRUE(more.ok());
  auto replay2 = CommitWithMerge(mgr_.get(), index_.get(), "main", root_b,
                                 "bob", "B", *c0);
  ASSERT_TRUE(replay2.ok()) << replay2.status().ToString();
  EXPECT_TRUE(replay2->already_applied);
  EXPECT_EQ(replay2->commit, first->commit);
  EXPECT_EQ(replay2->head, *mgr_->Head("main"));
}

// Same contract for a branch-creation publish (expected_head = nullopt):
// the replayed creation resolves to the landed creation commit instead of
// writing a gratuitous merge-from-empty.
TEST_F(OccTest, ReplayOfBranchCreationDeduplicates) {
  const Hash root = Put(index_->EmptyRoot(), Keys("c", 3));
  auto first = CommitWithMerge(mgr_.get(), index_.get(), "fresh", root,
                               "carol", "C", std::nullopt);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->already_applied);

  auto replay = CommitWithMerge(mgr_.get(), index_.get(), "fresh", root,
                                "carol", "C", std::nullopt);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay->already_applied);
  EXPECT_EQ(replay->commit, first->commit);
  EXPECT_EQ(replay->head, first->head);
  EXPECT_EQ(*mgr_->Head("fresh"), first->head);
}

// --- Conflict-path cost accounting (file store: fsyncs) --------------------

TEST(OccAccountingTest, LosingCasZeroFsyncsWinningRetryExactlyOne) {
  const std::string path =
      ::testing::TempDir() + "occ_fsync_accounting.sirilog";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  PosTree index(store);
  BranchManager mgr(store);

  const Hash base_root = *index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  auto c0 = mgr.CommitOnBranch("main", base_root, "init", "base");
  ASSERT_TRUE(c0.ok());

  const Hash root_b = *index.PutBatch(base_root, {{"b/key", "b"}});
  const Hash root_a = *index.PutBatch(base_root, {{"a/key", "a"}});
  ASSERT_TRUE(mgr.CommitOnBranchIf("main", *c0, root_a, "alice", "A").ok());

  // Losing CAS attempt: staged batch dropped, not flushed — zero fsyncs,
  // zero appended pages.
  const uint64_t fsyncs_before = store->fsync_count();
  const uint64_t puts_before = store->stats().puts;
  CasResult lost = mgr.CommitOnBranchIf("main", *c0, root_b, "bob", "B");
  ASSERT_TRUE(lost.status.IsConflict());
  EXPECT_EQ(store->fsync_count(), fsyncs_before);
  EXPECT_EQ(store->stats().puts, puts_before);

  // Winning merge retry: merged pages + both commit objects land as one
  // batched append, made durable by exactly one fsync.
  auto res =
      CommitWithMerge(&mgr, &index, "main", root_b, "bob", "B", *c0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->merge_commits, 1);
  EXPECT_EQ(store->fsync_count(), fsyncs_before + 1);

  std::remove(path.c_str());
}

// --- Conflict-path cost accounting (client store: upload RPCs) -------------

TEST(OccAccountingTest, LosingCasZeroUploadsWinningRetryExactlyOneRpc) {
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  PosTree server_index(server_store);
  const Hash base_root =
      *server_index.PutBatch(server_index.EmptyRoot(), MakeKvs(10));
  BranchManager* mgr = servlet.branches();
  auto c0 = mgr->CommitOnBranch("main", base_root, "init", "base");
  ASSERT_TRUE(c0.ok());

  auto client_store =
      std::make_shared<ForkbaseClientStore>(&servlet, 1 << 20, 0);
  auto client_index = server_index.WithStore(client_store);

  const Hash root_b = *client_index->PutBatch(base_root, {{"b/key", "b"}});
  const Hash root_a = *client_index->PutBatch(base_root, {{"a/key", "a"}});
  ASSERT_TRUE(
      mgr->CommitOnBranchIf("main", *c0, root_a, "alice", "A",
                            client_store.get())
          .ok());

  // Losing CAS attempt through the client: no upload RPC at all.
  const uint64_t puts_before = client_store->remote_stats().remote_puts;
  CasResult lost = mgr->CommitOnBranchIf("main", *c0, root_b, "bob", "B",
                                         client_store.get());
  ASSERT_TRUE(lost.status.IsConflict());
  EXPECT_EQ(client_store->remote_stats().remote_puts, puts_before);

  // Winning merge retry: the whole staged attempt — merged pages and both
  // commit objects — ships in exactly one PutMany upload RPC.
  auto res = CommitWithMerge(mgr, client_index.get(), "main", root_b, "bob",
                             "B", *c0);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->merge_commits, 1);
  EXPECT_EQ(client_store->remote_stats().remote_puts, puts_before + 1);

  // And the merged result is readable server-side.
  auto merge = mgr->ReadCommit(res->head);
  ASSERT_TRUE(merge.ok());
  auto got = server_index.Get(merge->root, "b/key", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
}

}  // namespace
}  // namespace siri
