// Copyright (c) 2026 The siri Authors. MIT license.
//
// Version layer: commit objects, branches, history walks, merge bases,
// and version transfer packs.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "tests/test_util.h"
#include "version/commit.h"
#include "version/transfer.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;

TEST(CommitTest, EncodeDecodeRoundTrip) {
  Commit c;
  c.root = Sha256::Digest("some root");
  c.parents = {Sha256::Digest("p1"), Sha256::Digest("p2")};
  c.author = "alice";
  c.message = "merge cleanup into main";
  c.sequence = 42;
  auto back = Commit::Decode(c.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root, c.root);
  ASSERT_EQ(back->parents.size(), 2u);
  EXPECT_EQ(back->parents[1], c.parents[1]);
  EXPECT_EQ(back->author, "alice");
  EXPECT_EQ(back->message, c.message);
  EXPECT_EQ(back->sequence, 42u);
}

TEST(CommitTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Commit::Decode("not a commit").ok());
  Commit c;
  c.root = Sha256::Digest("r");
  std::string bytes = c.Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(Commit::Decode(bytes).ok());
}

class BranchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = std::make_unique<PosTree>(store_);
    mgr_ = std::make_unique<BranchManager>(store_);
  }

  Hash MakeRoot(int n, int version) {
    Hash root = Hash::Zero();
    std::vector<KV> kvs;
    for (int i = 0; i < n; ++i) {
      kvs.push_back(KV{TKey(i), testing_util::TVal(i, version)});
    }
    auto r = index_->PutBatch(root, kvs);
    EXPECT_TRUE(r.ok());
    return *r;
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<PosTree> index_;
  std::unique_ptr<BranchManager> mgr_;
};

TEST_F(BranchTest, CommitAdvancesHead) {
  const Hash v1 = MakeRoot(10, 0);
  auto c1 = mgr_->CommitOnBranch("main", v1, "alice", "initial");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*mgr_->Head("main"), *c1);

  const Hash v2 = MakeRoot(10, 1);
  auto c2 = mgr_->CommitOnBranch("main", v2, "alice", "update");
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*mgr_->Head("main"), *c2);

  auto commit = mgr_->ReadCommit(*c2);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->root, v2);
  ASSERT_EQ(commit->parents.size(), 1u);
  EXPECT_EQ(commit->parents[0], *c1);
  EXPECT_EQ(commit->sequence, 1u);
}

TEST_F(BranchTest, BranchLifecycle) {
  auto c1 = mgr_->CommitOnBranch("main", MakeRoot(5, 0), "a", "m");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(mgr_->CreateBranch("dev", *c1).ok());
  EXPECT_FALSE(mgr_->CreateBranch("dev", *c1).ok());  // exists
  EXPECT_EQ(mgr_->ListBranches().size(), 2u);
  ASSERT_TRUE(mgr_->DeleteBranch("dev").ok());
  EXPECT_FALSE(mgr_->Head("dev").ok());
  EXPECT_FALSE(mgr_->MoveBranch("dev", *c1).ok());
}

TEST_F(BranchTest, LogWalksNewestFirst) {
  std::vector<Hash> commits;
  for (int i = 0; i < 5; ++i) {
    auto c = mgr_->CommitOnBranch("main", MakeRoot(5, i), "a",
                                  "commit " + std::to_string(i));
    ASSERT_TRUE(c.ok());
    commits.push_back(*c);
  }
  auto log = mgr_->Log(commits.back());
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*log)[i].first, commits[4 - i]);
  }
  // Limited log.
  auto short_log = mgr_->Log(commits.back(), 2);
  ASSERT_TRUE(short_log.ok());
  EXPECT_EQ(short_log->size(), 2u);
}

TEST_F(BranchTest, MergeBaseOfDivergedBranches) {
  auto base = mgr_->CommitOnBranch("main", MakeRoot(10, 0), "a", "base");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(mgr_->CreateBranch("feature", *base).ok());

  auto main2 = mgr_->CommitOnBranch("main", MakeRoot(10, 1), "a", "main-2");
  ASSERT_TRUE(main2.ok());
  auto feat2 = mgr_->CommitOnBranch("feature", MakeRoot(10, 2), "b", "feat-2");
  ASSERT_TRUE(feat2.ok());
  auto feat3 = mgr_->CommitOnBranch("feature", MakeRoot(10, 3), "b", "feat-3");
  ASSERT_TRUE(feat3.ok());

  auto mb = mgr_->MergeBase(*main2, *feat3);
  ASSERT_TRUE(mb.ok());
  EXPECT_EQ(*mb, *base);

  // End-to-end: use the merge base for a three-way index merge.
  auto main_commit = mgr_->ReadCommit(*main2);
  auto feat_commit = mgr_->ReadCommit(*feat3);
  auto base_commit = mgr_->ReadCommit(*mb);
  ASSERT_TRUE(main_commit.ok() && feat_commit.ok() && base_commit.ok());
  auto merged = index_->Merge3(main_commit->root, feat_commit->root,
                               base_commit->root,
                               [](const std::string&,
                                  const std::optional<std::string>& o,
                                  const std::optional<std::string>&) {
                                 return o;
                               });
  EXPECT_TRUE(merged.ok());
}

TEST_F(BranchTest, IsAncestorReflectsHistory) {
  auto c1 = mgr_->CommitOnBranch("main", MakeRoot(5, 0), "a", "1");
  auto c2 = mgr_->CommitOnBranch("main", MakeRoot(5, 1), "a", "2");
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_TRUE(*mgr_->IsAncestor(*c1, *c2));
  EXPECT_FALSE(*mgr_->IsAncestor(*c2, *c1));
}

TEST_F(BranchTest, UnrelatedHistoriesHaveNoMergeBase) {
  auto a = mgr_->CommitOnBranch("a", MakeRoot(5, 0), "x", "1");
  auto b = mgr_->CommitOnBranch("b", MakeRoot(5, 1), "y", "1");
  ASSERT_TRUE(a.ok() && b.ok());
  auto mb = mgr_->MergeBase(*a, *b);
  EXPECT_FALSE(mb.ok());
  EXPECT_TRUE(mb.status().IsNotFound());
}

// Property test: MergeBase / IsAncestor / Log against a brute-force
// reachability oracle on random merge DAGs. The linear-history tests
// above never exercise two-parent commits, multiple roots, or diamond
// shapes; this does, across several seeded generations.
TEST(DagPropertyTest, RandomMergeDagsMatchReachabilityOracle) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto store = NewInMemoryNodeStore();
    BranchManager mgr(store);

    // Build a random DAG: mostly 1- or 2-parent commits over the existing
    // prefix, with occasional fresh roots so unrelated histories exist.
    constexpr int kCommits = 40;
    std::vector<Hash> hashes;
    std::vector<std::vector<int>> parents_of(kCommits);
    std::vector<uint64_t> seq(kCommits, 0);
    for (int i = 0; i < kCommits; ++i) {
      Commit c;
      c.root = Sha256::Digest("root-" + std::to_string(seed) + "-" +
                              std::to_string(i));
      c.author = "gen";
      c.message = "c" + std::to_string(i);
      if (i > 0 && !(i % 13 == 5)) {  // i%13==5: a new unrelated root
        const int num_parents = (i > 1 && rng.Bernoulli(0.4)) ? 2 : 1;
        std::vector<int> ps;
        while (static_cast<int>(ps.size()) < num_parents) {
          const int p = static_cast<int>(rng.Uniform(i));
          if (std::find(ps.begin(), ps.end(), p) == ps.end()) ps.push_back(p);
        }
        for (int p : ps) {
          c.parents.push_back(hashes[p]);
          c.sequence = std::max(c.sequence, seq[p] + 1);
        }
        parents_of[i] = ps;
      }
      seq[i] = c.sequence;
      auto h = mgr.WriteCommit(c);
      ASSERT_TRUE(h.ok());
      hashes.push_back(*h);
    }

    // Brute-force reachability oracle (reflexive: i reaches i).
    std::vector<std::unordered_set<int>> reach(kCommits);
    for (int i = 0; i < kCommits; ++i) {
      reach[i].insert(i);
      for (int p : parents_of[i]) {
        reach[i].insert(reach[p].begin(), reach[p].end());
      }
    }
    std::unordered_map<Hash, int, HashHasher> index_of;
    for (int i = 0; i < kCommits; ++i) index_of[hashes[i]] = i;

    for (int a = 0; a < kCommits; ++a) {
      // Log enumerates exactly a's ancestor closure, newest-first by
      // sequence (non-increasing).
      auto log = mgr.Log(hashes[a], std::numeric_limits<size_t>::max());
      ASSERT_TRUE(log.ok());
      EXPECT_EQ(log->size(), reach[a].size());
      uint64_t last_seq = std::numeric_limits<uint64_t>::max();
      for (const auto& [h, c] : *log) {
        const int i = index_of.at(h);
        EXPECT_TRUE(reach[a].count(i)) << "log leaked non-ancestor " << i;
        EXPECT_LE(c.sequence, last_seq);
        last_seq = c.sequence;
      }

      for (int b = 0; b < kCommits; ++b) {
        // IsAncestor(a, b) <=> a in reach(b).
        auto anc = mgr.IsAncestor(hashes[a], hashes[b]);
        ASSERT_TRUE(anc.ok());
        EXPECT_EQ(*anc, reach[b].count(a) > 0)
            << "IsAncestor(" << a << ", " << b << ")";

        // MergeBase: a common ancestor of maximal sequence, or NotFound
        // when the histories are unrelated.
        std::vector<int> common;
        for (int i : reach[a]) {
          if (reach[b].count(i)) common.push_back(i);
        }
        auto mb = mgr.MergeBase(hashes[a], hashes[b]);
        if (common.empty()) {
          EXPECT_FALSE(mb.ok());
          EXPECT_TRUE(mb.status().IsNotFound());
          continue;
        }
        ASSERT_TRUE(mb.ok()) << "MergeBase(" << a << ", " << b << ")";
        const int got = index_of.at(*mb);
        EXPECT_TRUE(std::find(common.begin(), common.end(), got) !=
                    common.end())
            << "merge base " << got << " is not a common ancestor";
        uint64_t max_seq = 0;
        for (int i : common) max_seq = std::max(max_seq, seq[i]);
        EXPECT_EQ(seq[got], max_seq)
            << "merge base " << got << " is not a lowest common ancestor";
      }
    }
  }
}

TEST(TransferTest, PackAndUnpackFullVersion) {
  auto src_store = NewInMemoryNodeStore();
  PosTree src(src_store);
  auto root = src.PutBatch(Hash::Zero(), MakeKvs(1000));
  ASSERT_TRUE(root.ok());

  auto pack = PackVersions(src, {*root});
  ASSERT_TRUE(pack.ok());
  EXPECT_GT(pack->ByteSize(), 0u);

  auto dst_store = NewInMemoryNodeStore();
  ASSERT_TRUE(UnpackVersions(*pack, dst_store.get()).ok());
  PosTree dst(dst_store);
  EXPECT_EQ(Dump(dst, *root), Dump(src, *root));
}

TEST(TransferTest, IncrementalPackShipsOnlyDelta) {
  auto src_store = NewInMemoryNodeStore();
  PosTree src(src_store);
  auto v1 = src.PutBatch(Hash::Zero(), MakeKvs(2000));
  ASSERT_TRUE(v1.ok());
  auto v2 = src.Put(*v1, TKey(1000), "changed");
  ASSERT_TRUE(v2.ok());

  auto full = PackVersions(src, {*v2});
  auto delta = PackVersions(src, {*v2}, /*have=*/{*v1});
  ASSERT_TRUE(full.ok() && delta.ok());
  EXPECT_LT(delta->ByteSize(), full->ByteSize() / 10);

  // Receiver with v1 + the delta can read all of v2.
  auto dst_store = NewInMemoryNodeStore();
  PosTree dst(dst_store);
  auto base_pack = PackVersions(src, {*v1});
  ASSERT_TRUE(base_pack.ok());
  ASSERT_TRUE(UnpackVersions(*base_pack, dst_store.get()).ok());
  ASSERT_TRUE(UnpackVersions(*delta, dst_store.get()).ok());
  auto got = dst.Get(*v2, TKey(1000), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "changed");
}

TEST(TransferTest, CorruptPackIsRejected) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto root = tree.PutBatch(Hash::Zero(), MakeKvs(50));
  ASSERT_TRUE(root.ok());
  auto pack = PackVersions(tree, {*root});
  ASSERT_TRUE(pack.ok());
  pack->bytes.resize(pack->bytes.size() - 3);  // truncate
  auto dst = NewInMemoryNodeStore();
  EXPECT_FALSE(UnpackVersions(*pack, dst.get()).ok());

  VersionPack garbage;
  garbage.bytes = "definitely not a pack";
  EXPECT_FALSE(UnpackVersions(garbage, dst.get()).ok());
}

TEST(GcTest, PruneExceptKeepsRetainedVersionsReadable) {
  auto store = NewInMemoryNodeStore();
  PosTree tree(store);
  auto v1 = tree.PutBatch(Hash::Zero(), MakeKvs(1000));
  ASSERT_TRUE(v1.ok());
  auto v2 = tree.PutBatch(*v1, MakeKvs(1000, /*version=*/1));
  ASSERT_TRUE(v2.ok());
  auto v3 = tree.PutBatch(*v2, MakeKvs(1000, /*version=*/2));
  ASSERT_TRUE(v3.ok());

  // Retain only v3: v1/v2-only pages go away.
  PageSet retain;
  ASSERT_TRUE(tree.CollectPages(*v3, &retain).ok());
  const uint64_t dropped = store->PruneExcept(retain);
  EXPECT_GT(dropped, 0u);

  // v3 fully readable; v1 lookups now fail on missing pages.
  std::map<std::string, std::string> expected;
  for (const auto& kv : MakeKvs(1000, 2)) expected[kv.key] = kv.value;
  testing_util::ExpectContent(tree, *v3, expected);
  bool v1_broken = false;
  for (int i = 0; i < 1000 && !v1_broken; ++i) {
    auto got = tree.Get(*v1, TKey(i), nullptr);
    if (!got.ok()) v1_broken = true;
  }
  EXPECT_TRUE(v1_broken);
}

}  // namespace
}  // namespace siri
