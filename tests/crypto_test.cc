// Copyright (c) 2026 The siri Authors. MIT license.
//
// SHA-256 against FIPS 180-4 / NIST test vectors, Hash semantics, and
// rolling-hash (buzhash) behavior including the content-defined-chunking
// locality property POS-Tree depends on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "crypto/hash_pool.h"
#include "crypto/rolling_hash.h"
#include "crypto/sha256.h"

namespace siri {
namespace {

TEST(Sha256Test, EmptyStringVector) {
  EXPECT_EQ(Sha256::Digest("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(Sha256::Digest("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(Sha256::Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAVector) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(ctx.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(1);
  const std::string data = rng.Bytes(10000);
  for (size_t chunk : {1u, 7u, 63u, 64u, 65u, 1000u}) {
    Sha256 ctx;
    for (size_t i = 0; i < data.size(); i += chunk) {
      ctx.Update(data.data() + i, std::min(chunk, data.size() - i));
    }
    EXPECT_EQ(ctx.Finish(), Sha256::Digest(data)) << "chunk=" << chunk;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes cross the padding edge cases.
  for (size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string data(n, 'x');
    Sha256 a;
    a.Update(data);
    Sha256 b;
    for (char c : data) b.Update(&c, 1);
    EXPECT_EQ(a.Finish(), b.Finish()) << n;
  }
}

TEST(Sha256Test, ContextReusableAfterReset) {
  Sha256 ctx;
  ctx.Update("garbage");
  (void)ctx.Finish();
  ctx.Reset();
  ctx.Update("abc");
  EXPECT_EQ(ctx.Finish().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HashTest, ZeroIsZero) {
  EXPECT_TRUE(Hash::Zero().IsZero());
  EXPECT_FALSE(Sha256::Digest("x").IsZero());
}

TEST(HashTest, OrderingAndEquality) {
  const Hash a = Sha256::Digest("a");
  const Hash b = Sha256::Digest("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_EQ(a, Sha256::Digest("a"));
}

TEST(HashTest, Prefix64Stable) {
  const Hash a = Sha256::Digest("stable");
  EXPECT_EQ(a.Prefix64(), Sha256::Digest("stable").Prefix64());
}

// --- Sha256Pool (parallel batch hashing) -----------------------------------

std::vector<std::shared_ptr<const std::string>> PoolPages(size_t n) {
  // Sizes straddle every interesting boundary: empty, sub-block, exact
  // block multiples, multi-block.
  Rng rng(0x9a9e);
  std::vector<std::shared_ptr<const std::string>> pages;
  const size_t sizes[] = {0, 1, 55, 56, 63, 64, 65, 128, 1000, 4096};
  for (size_t i = 0; i < n; ++i) {
    std::string page;
    const size_t len = sizes[i % (sizeof(sizes) / sizeof(sizes[0]))] + i / 10;
    page.reserve(len);
    for (size_t b = 0; b < len; ++b) {
      page.push_back(static_cast<char>(rng.Uniform(256)));
    }
    pages.push_back(std::make_shared<const std::string>(std::move(page)));
  }
  return pages;
}

TEST(Sha256PoolTest, DigestsBitIdenticalToSerialPath) {
  // Large enough to engage the workers (above the inline threshold).
  const auto pages = PoolPages(300);
  Sha256Pool pool(3);
  const auto digests = pool.DigestAll(pages);
  ASSERT_EQ(digests.size(), pages.size());
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(digests[i], Sha256::Digest(*pages[i])) << "page " << i;
  }
  EXPECT_GE(pool.stats().jobs, 1u);
  EXPECT_EQ(pool.stats().pages, pages.size());
}

TEST(Sha256PoolTest, SmallBatchesDigestInline) {
  const auto pages = PoolPages(4);
  Sha256Pool pool(3);
  const auto digests = pool.DigestAll(pages);
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(digests[i], Sha256::Digest(*pages[i]));
  }
  EXPECT_EQ(pool.stats().jobs, 0u);
  EXPECT_EQ(pool.stats().inline_jobs, 1u);
}

TEST(Sha256PoolTest, ZeroWorkersFallsBackToInlineEverywhere) {
  const auto pages = PoolPages(200);
  Sha256Pool pool(0);
  const auto digests = pool.DigestAll(pages);
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(digests[i], Sha256::Digest(*pages[i]));
  }
  EXPECT_EQ(pool.stats().jobs, 0u);
}

TEST(Sha256PoolTest, ConcurrentCallersShareTheWorkers) {
  Sha256Pool pool(2);
  const auto pages = PoolPages(150);
  std::vector<std::thread> callers;
  std::vector<std::vector<Hash>> results(4);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] { results[t] = pool.DigestAll(pages); });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(results[t].size(), pages.size());
    for (size_t i = 0; i < pages.size(); ++i) {
      EXPECT_EQ(results[t][i], Sha256::Digest(*pages[i]));
    }
  }
}

TEST(Sha256PoolTest, EmptyBatchIsANoOp) {
  Sha256Pool pool(2);
  EXPECT_TRUE(pool.DigestAll({}).empty());
}

TEST(RollingHashTest, PrimedAfterWindowFull) {
  RollingHash rh(8);
  for (int i = 0; i < 7; ++i) {
    rh.Roll(static_cast<uint8_t>(i));
    EXPECT_FALSE(rh.Primed());
  }
  rh.Roll(7);
  EXPECT_TRUE(rh.Primed());
}

TEST(RollingHashTest, WindowLocality) {
  // The fingerprint at position i depends only on the last W bytes, so two
  // streams sharing a W-byte suffix have equal fingerprints — the property
  // that re-synchronizes chunk boundaries after an edit.
  const size_t w = 16;
  Rng rng(3);
  const std::string shared = rng.Bytes(64);
  RollingHash a(w), b(w);
  const std::string prefix_a = rng.Bytes(33);
  const std::string prefix_b = rng.Bytes(71);
  for (char c : prefix_a) a.Roll(static_cast<uint8_t>(c));
  for (char c : prefix_b) b.Roll(static_cast<uint8_t>(c));
  uint64_t last_a = 0, last_b = 0;
  for (char c : shared) {
    last_a = a.Roll(static_cast<uint8_t>(c));
    last_b = b.Roll(static_cast<uint8_t>(c));
  }
  EXPECT_EQ(last_a, last_b);
}

TEST(RollingHashTest, ResetClearsState) {
  RollingHash rh(8);
  for (int i = 0; i < 20; ++i) rh.Roll(static_cast<uint8_t>(i));
  rh.Reset();
  EXPECT_FALSE(rh.Primed());
  EXPECT_EQ(rh.value(), 0u);
}

TEST(RollingHashTest, DeterministicAcrossInstances) {
  RollingHash a(32), b(32);
  Rng rng(4);
  const std::string data = rng.Bytes(500);
  for (char c : data) {
    EXPECT_EQ(a.Roll(static_cast<uint8_t>(c)), b.Roll(static_cast<uint8_t>(c)));
  }
}

TEST(RollingHashTest, BoundaryRateMatchesPattern) {
  // With a q-bit pattern the boundary probability per byte is 2^-q; check
  // the empirical rate is in the right ballpark.
  const int q = 8;
  const uint64_t mask = (1u << q) - 1;
  RollingHash rh(48);
  Rng rng(5);
  uint64_t hits = 0;
  const uint64_t n = 1 << 20;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t fp = rh.Roll(static_cast<uint8_t>(rng.Next() & 0xff));
    if (rh.Primed() && (fp & mask) == mask) ++hits;
  }
  const double rate = static_cast<double>(hits) / n;
  EXPECT_GT(rate, 1.0 / (1 << q) / 2);
  EXPECT_LT(rate, 2.0 / (1 << q));
}

TEST(BuzhashTableTest, TableLooksRandom) {
  const uint64_t* t = BuzhashTable();
  // All entries distinct and bit-balanced in aggregate.
  int ones = 0;
  for (int i = 0; i < 256; ++i) {
    for (int j = i + 1; j < 256; ++j) EXPECT_NE(t[i], t[j]);
    ones += __builtin_popcountll(t[i]);
  }
  // Expect ~8192 set bits (256 * 32); allow wide slack.
  EXPECT_GT(ones, 7500);
  EXPECT_LT(ones, 8900);
}

}  // namespace
}  // namespace siri
