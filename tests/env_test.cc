// Copyright (c) 2026 The siri Authors. MIT license.
//
// Env seam unit tests: PosixEnv round trips, and the FaultEnv model the
// crash harness (crash_test.cc) stands on. The model tests matter as much
// as the store tests — a durability simulator that is too forgiving makes
// every crash-consistency result above it vacuous, so each guarantee the
// harness leans on (sync-covered prefixes, pending-rename rollback,
// created-never-synced files vanishing, fsync failure dropping dirty
// bytes) gets its own direct assertion here.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>

#include "io/env.h"
#include "io/fault_env.h"

namespace siri {
namespace io {
namespace {

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + "/siri_env_" + std::to_string(getpid()) + "_" +
         stem;
}

Status WriteAll(Env* env, const std::string& path, const std::string& data,
                bool sync) {
  std::unique_ptr<WritableFile> f;
  Status s = env->NewWritableFile(path, /*truncate=*/true, &f);
  if (!s.ok()) return s;
  s = f->Append(data);
  if (!s.ok()) return s;
  return sync ? f->Sync() : f->Flush();
}

// --- PosixEnv ----------------------------------------------------------

TEST(PosixEnvTest, AppendFlushReadRoundTrip) {
  Env* env = Env::Default();
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(WriteAll(env, path, "hello, disk", /*sync=*/false).ok());

  std::string back;
  ASSERT_TRUE(env->ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "hello, disk");
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, back.size());
  EXPECT_TRUE(env->FileExists(path));
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(PosixEnvTest, AppendModeExtendsExistingFile) {
  Env* env = Env::Default();
  const std::string path = TempPath("append");
  ASSERT_TRUE(WriteAll(env, path, "one", /*sync=*/true).ok());
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewWritableFile(path, /*truncate=*/false, &f).ok());
    ASSERT_TRUE(f->Append("+two").ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  std::string back;
  ASSERT_TRUE(env->ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "one+two");
  ASSERT_TRUE(env->DeleteFile(path).ok());
}

TEST(PosixEnvTest, RenameAndSyncDirReplacesAtomically) {
  Env* env = Env::Default();
  const std::string from = TempPath("rename_from");
  const std::string to = TempPath("rename_to");
  ASSERT_TRUE(WriteAll(env, from, "new contents", /*sync=*/true).ok());
  ASSERT_TRUE(WriteAll(env, to, "old contents", /*sync=*/true).ok());
  ASSERT_TRUE(env->RenameAndSyncDir(from, to).ok());
  EXPECT_FALSE(env->FileExists(from));
  std::string back;
  ASSERT_TRUE(env->ReadFileToString(to, &back).ok());
  EXPECT_EQ(back, "new contents");
  ASSERT_TRUE(env->DeleteFile(to).ok());
}

TEST(PosixEnvTest, MissingFileErrorsAreTyped) {
  Env* env = Env::Default();
  const std::string path = TempPath("missing");
  std::string back;
  EXPECT_FALSE(env->ReadFileToString(path, &back).ok());
  EXPECT_FALSE(env->FileSize(path).ok());
  EXPECT_FALSE(env->DeleteFile(path).ok());
  std::unique_ptr<SequentialFile> f;
  EXPECT_FALSE(env->NewSequentialFile(path, &f).ok());
}

// --- FaultEnv scripting -------------------------------------------------

TEST(FaultEnvTest, ScriptedFaultPinsExactMutatingOp) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());  // op 0
  env.ScriptAt(2, {IoFaultKind::kEIO, 0});
  EXPECT_TRUE(f->Append("a").ok());        // op 1
  const Status s = f->Append("b");         // op 2: injected
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("injected eio"), std::string::npos);
  EXPECT_TRUE(f->Append("c").ok());        // op 3: clean again
  const auto st = env.stats();
  EXPECT_EQ(st.ops, 4u);
  EXPECT_EQ(st.injected, 1u);
  EXPECT_EQ(st.eio, 1u);
}

TEST(FaultEnvTest, EnospcIsTypedResourceExhausted) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  env.ScriptNext({IoFaultKind::kENoSpc, 0});
  const Status s = f->Append("x");
  EXPECT_TRUE(s.IsResourceExhausted()) << s.ToString();
}

TEST(FaultEnvTest, EnospcAfterOpHitsOnlyWritePathOps) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  env.set_enospc_after_op(env.op_count());
  // The full disk refuses new bytes and durability points...
  EXPECT_TRUE(f->Append("more").IsResourceExhausted());
  EXPECT_TRUE(f->Flush().IsResourceExhausted());
  EXPECT_TRUE(f->Sync().IsResourceExhausted());
  // ...but metadata ops (rename, dir fsync) still work: recovery can
  // still run its atomic-replace dance on a full disk.
  EXPECT_TRUE(env.Rename("f", "g").ok());
  EXPECT_TRUE(env.SyncDir("g").ok());
}

TEST(FaultEnvTest, ShortWriteTearsAppendTail) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  env.ScriptNext({IoFaultKind::kShortWrite, 3});
  EXPECT_FALSE(f->Append("0123456789").ok());
  auto size = env.FileSize("f");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 3u);  // exactly the scripted torn prefix
}

TEST(FaultEnvTest, ReadsNeverConsumeOpIndices) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  ASSERT_TRUE(f->Append("abc").ok());
  const uint64_t ops = env.op_count();
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("f", &back).ok());
  EXPECT_TRUE(env.FileExists("f"));
  ASSERT_TRUE(env.FileSize("f").ok());
  ASSERT_TRUE(env.DurableSize("f").ok());
  // Crash points stay stable no matter how often verification re-reads.
  EXPECT_EQ(env.op_count(), ops);
}

// --- buffered durability model ------------------------------------------

TEST(FaultEnvTest, SyncAdvancesDurablePrefix) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  ASSERT_TRUE(f->Append("synced").ok());
  EXPECT_EQ(*env.DurableSize("f"), 0u);
  ASSERT_TRUE(f->Sync().ok());
  EXPECT_EQ(*env.DurableSize("f"), 6u);
  ASSERT_TRUE(f->Append("+dirty").ok());
  EXPECT_EQ(*env.DurableSize("f"), 6u);  // Flush is not durability
  ASSERT_TRUE(f->Flush().ok());
  EXPECT_EQ(*env.DurableSize("f"), 6u);

  env.Reboot();  // default: drop everything unsynced
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("f", &back).ok());
  EXPECT_EQ(back, "synced");
}

TEST(FaultEnvTest, CreatedButNeverSyncedFileVanishesAtPowerCut) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("ghost", false, &f).ok());
  ASSERT_TRUE(f->Append("never synced").ok());
  ASSERT_TRUE(f->Flush().ok());
  env.Reboot();
  EXPECT_FALSE(env.FileExists("ghost"));
}

TEST(FaultEnvTest, KeepPrefixCutIsSeededAndOverridable) {
  auto build = [](FaultEnv* env) {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewWritableFile("f", false, &f).ok());
    ASSERT_TRUE(f->Append("durable|").ok());
    ASSERT_TRUE(f->Sync().ok());
    ASSERT_TRUE(f->Append("0123456789").ok());
  };
  // Same seed, same cut.
  uint64_t sizes[2];
  for (int i = 0; i < 2; ++i) {
    FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
    build(&env);
    CrashSpec spec;
    spec.fate = CrashSpec::UnsyncedFate::kKeepPrefix;
    spec.seed = 7;
    env.Reboot(spec);
    sizes[i] = *env.FileSize("f");
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_GE(sizes[0], 8u);   // the synced prefix always survives
  EXPECT_LE(sizes[0], 18u);  // never more than was ever written

  // The per-path override pins the tear exactly (and clamps).
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  build(&env);
  CrashSpec spec;
  spec.keep_unsynced["f"] = 4;
  env.Reboot(spec);
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("f", &back).ok());
  EXPECT_EQ(back, "durable|0123");
}

TEST(FaultEnvTest, FailedSyncDropsUnsyncedBytes) {
  // The kernel-faithful fsyncgate model: the error also invalidates the
  // dirty pages, so a later "successful" fsync covers nothing.
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());
  ASSERT_TRUE(f->Append("durable|").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("doomed").ok());
  env.ScriptNext({IoFaultKind::kSyncFail, 0});
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_EQ(*env.FileSize("f"), 8u);  // "doomed" is gone, not pending
  ASSERT_TRUE(f->Sync().ok());        // the deceitful retry "succeeds"
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("f", &back).ok());
  EXPECT_EQ(back, "durable|");
}

// --- rename + directory-fsync model -------------------------------------

TEST(FaultEnvTest, UncommittedRenameRollsBackAtPowerCut) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  ASSERT_TRUE(WriteAll(&env, "old", "OLD", /*sync=*/true).ok());
  ASSERT_TRUE(WriteAll(&env, "new", "NEW", /*sync=*/true).ok());
  ASSERT_TRUE(env.Rename("new", "old").ok());
  // Live directory sees the replacement immediately...
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("old", &back).ok());
  EXPECT_EQ(back, "NEW");
  // ...but without a SyncDir the power cut rolls the entry back.
  env.Reboot();
  back.clear();
  ASSERT_TRUE(env.ReadFileToString("old", &back).ok());
  EXPECT_EQ(back, "OLD");
  ASSERT_TRUE(env.ReadFileToString("new", &back).ok());  // restored too
}

TEST(FaultEnvTest, SyncDirCommitsRenameAcrossPowerCut) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  ASSERT_TRUE(WriteAll(&env, "old", "OLD", /*sync=*/true).ok());
  ASSERT_TRUE(WriteAll(&env, "new", "NEW", /*sync=*/true).ok());
  ASSERT_TRUE(env.RenameAndSyncDir("new", "old").ok());
  env.Reboot();
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("old", &back).ok());
  EXPECT_EQ(back, "NEW");
  EXPECT_FALSE(env.FileExists("new"));
}

TEST(FaultEnvTest, DroppedDirSyncReportsOkButCommitsNothing) {
  // The reintroduced missing-parent-dir-fsync bug: SyncDir lies. The
  // caller sees OK, the crash sees an uncommitted rename.
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  ASSERT_TRUE(WriteAll(&env, "old", "OLD", /*sync=*/true).ok());
  ASSERT_TRUE(WriteAll(&env, "new", "NEW", /*sync=*/true).ok());
  env.set_drop_dir_syncs(true);
  ASSERT_TRUE(env.RenameAndSyncDir("new", "old").ok());
  env.Reboot();
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("old", &back).ok());
  EXPECT_EQ(back, "OLD");
}

// --- power cut as an op-indexed fault ------------------------------------

TEST(FaultEnvTest, CrashAtOpFailsEveryMutatingOpUntilReboot) {
  FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile("f", false, &f).ok());  // op 0
  ASSERT_TRUE(f->Append("a").ok());                       // op 1
  ASSERT_TRUE(f->Sync().ok());                            // op 2
  env.set_crash_at_op(3);
  EXPECT_FALSE(f->Append("b").ok());  // op 3: lights out
  EXPECT_FALSE(f->Flush().ok());
  EXPECT_FALSE(f->Sync().ok());
  EXPECT_FALSE(env.Rename("f", "g").ok());
  EXPECT_GE(env.stats().power_cut_failures, 4u);
  env.Reboot();
  std::unique_ptr<WritableFile> g;
  ASSERT_TRUE(env.NewWritableFile("f", false, &g).ok());
  ASSERT_TRUE(g->Append("c").ok());  // back up after reboot
  std::string back;
  ASSERT_TRUE(env.ReadFileToString("f", &back).ok());
  EXPECT_EQ(back, "ac");
}

TEST(FaultEnvTest, RandomModeIsReproducibleFromSeed) {
  IoFaultRandomConfig cfg;
  cfg.fault_rate = 0.5;
  uint64_t injected[2];
  for (int i = 0; i < 2; ++i) {
    FaultEnv env(Env::Default(), FaultEnv::Mode::kBuffered, /*seed=*/42, cfg);
    std::unique_ptr<WritableFile> f;
    // At rate 0.5 the open itself may draw a fault; retrying stays
    // deterministic because the stream position is part of the state.
    while (!env.NewWritableFile("f", false, &f).ok()) {
    }
    for (int op = 0; op < 128; ++op) {
      (void)f->Append("x");
      (void)f->Sync();
    }
    injected[i] = env.stats().injected;
  }
  EXPECT_EQ(injected[0], injected[1]);
  EXPECT_GT(injected[0], 32u);  // rate 0.5 over 256 draws
  EXPECT_LT(injected[0], 224u);
}

TEST(FaultEnvTest, PassthroughModeInjectsOverARealFile) {
  const std::string path = TempPath("passthrough");
  FaultEnv env(Env::Default(), FaultEnv::Mode::kPassthrough);
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env.NewWritableFile(path, /*truncate=*/true, &f).ok());
  ASSERT_TRUE(f->Append("real-bytes").ok());
  ASSERT_TRUE(f->Sync().ok());
  env.ScriptNext({IoFaultKind::kENoSpc, 0});
  EXPECT_TRUE(f->Append("rejected").IsResourceExhausted());
  f.reset();
  std::string back;
  ASSERT_TRUE(Env::Default()->ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "real-bytes");  // the injected op forwarded nothing
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
}

}  // namespace
}  // namespace io
}  // namespace siri
