// Copyright (c) 2026 The siri Authors. MIT license.
//
// Chaos suite: the resilient RPC stack under deterministic sabotage.
// A FaultInjector (net/fault.h) tears, garbles, resets, and delays the
// transport's own traffic while the tests assert the three invariants the
// retry layer promises:
//
//   1. no lost acked update — every RPC the client saw succeed really
//      happened and survives;
//   2. no duplicated commit — a replayed Publish never lands twice, even
//      when the ack was lost after the server applied it;
//   3. bounded latency — a faulted RPC resolves (success or typed
//      Unavailable) within the retry policy's budget, never hangs.
//
// The scripted tests pin one fault kind at one exact wire attempt, so
// every classification branch (not-executed replay, ambiguous resolution,
// policy exhaustion) is hit deterministically. ChaosProcessTest forks
// real client processes with seeded random fault streams — the
// chaos-labeled ctest entry re-runs it scaled up via SIRI_CHAOS=1.
// Forked tests are excluded from the TSan job (ctest -E) like the other
// multi-process suites.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/varint.h"
#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "net/fault.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/commit.h"

namespace siri {
namespace {

using net::FaultAction;
using net::FaultInjector;
using net::FaultKind;
using testing_util::MakeKvs;

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// --- the injector itself ----------------------------------------------

TEST(FaultInjectorTest, ScriptedFaultsPinExactAttempts) {
  FaultInjector inj;  // default config: random mode off
  inj.ScriptAt(2, {FaultKind::kCorruptFrame, 0});
  EXPECT_EQ(inj.Next().kind, FaultKind::kNone);
  EXPECT_EQ(inj.Next().kind, FaultKind::kNone);
  EXPECT_EQ(inj.Next().kind, FaultKind::kCorruptFrame);
  EXPECT_EQ(inj.Next().kind, FaultKind::kNone);
  const auto st = inj.stats();
  EXPECT_EQ(st.attempts, 4u);
  EXPECT_EQ(st.injected, 1u);
  EXPECT_EQ(st.corrupt_frames, 1u);
}

TEST(FaultInjectorTest, ScriptNextFaultsTheUpcomingAttempt) {
  FaultInjector inj;
  EXPECT_EQ(inj.Next().kind, FaultKind::kNone);
  inj.ScriptNext({FaultKind::kResetAfterSend, 0});
  EXPECT_EQ(inj.Next().kind, FaultKind::kResetAfterSend);
  EXPECT_EQ(inj.Next().kind, FaultKind::kNone);
}

TEST(FaultInjectorTest, RandomModeIsReproducibleFromSeed) {
  FaultInjector::RandomConfig cfg;
  cfg.fault_rate = 0.5;
  FaultInjector a(42, cfg);
  FaultInjector b(42, cfg);
  for (int i = 0; i < 128; ++i) {
    const FaultAction fa = a.Next();
    const FaultAction fb = b.Next();
    EXPECT_EQ(fa.kind, fb.kind) << "diverged at attempt " << i;
  }
  // At rate 0.5 over 128 draws, both tails are astronomically unlikely.
  EXPECT_GT(a.stats().injected, 16u);
  EXPECT_LT(a.stats().injected, 112u);
}

TEST(FaultInjectorTest, StreamPositionIgnoresEnabledKindSet) {
  // Disabling kinds must not shift the random stream: attempt N draws the
  // same inject/pick pair regardless of which kinds are selectable.
  FaultInjector::RandomConfig all;
  all.fault_rate = 0.5;
  FaultInjector::RandomConfig resets_only = all;
  resets_only.short_write = false;
  resets_only.corrupt_frame = false;
  resets_only.reset_after_send = false;
  resets_only.delays = false;
  FaultInjector a(7, all);
  FaultInjector b(7, resets_only);
  for (int i = 0; i < 128; ++i) {
    const bool a_injected = a.Next().kind != FaultKind::kNone;
    const bool b_injected = b.Next().kind != FaultKind::kNone;
    EXPECT_EQ(a_injected, b_injected) << "Bernoulli diverged at " << i;
  }
}

// --- loopback fixture --------------------------------------------------

/// Fast-converging retry policy for tests: same shape as production, two
/// orders of magnitude quicker.
net::SocketTransport::Options FastRetryOptions() {
  net::SocketTransport::Options opts;
  opts.rpc_timeout_ms = 10000;
  opts.retry.max_attempts = 8;
  opts.retry.backoff_init_ms = 2;
  opts.retry.backoff_max_ms = 20;
  return opts;
}

class ChaosServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    servlet_ = std::make_unique<ForkbaseServlet>(store_);
    servlet_->RegisterIndex(std::make_unique<PosTree>(store_));
    net::ServerOptions opts;
    opts.worker_threads = 2;
    opts.group_flush_window_micros = 0;
    server_ = std::make_unique<net::SiriServer>(servlet_.get(), opts);
    ASSERT_TRUE(server_->Listen(0).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::shared_ptr<net::SocketTransport> Connect(
      net::SocketTransport::Options opts) {
    std::shared_ptr<net::SocketTransport> t;
    Status s =
        net::SocketTransport::Connect("127.0.0.1", server_->port(), &t, opts);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return t;
  }

  /// Every commit reachable from \p head, decoded.
  std::vector<Commit> History(const Hash& head) {
    std::vector<Commit> out;
    std::deque<Hash> frontier{head};
    std::set<std::string> seen{head.ToHex()};
    while (!frontier.empty()) {
      const Hash h = frontier.front();
      frontier.pop_front();
      auto c = servlet_->branches()->ReadCommit(h);
      if (!c.ok()) {
        ADD_FAILURE() << "unreadable commit in history: " << c.status().ToString();
        break;
      }
      for (const Hash& p : c->parents) {
        if (seen.insert(p.ToHex()).second) frontier.push_back(p);
      }
      out.push_back(*c);
    }
    return out;
  }

  /// How many commits in \p head's history carry \p message — the
  /// duplicate detector: every acked publish must score exactly 1.
  int MessageCount(const Hash& head, const std::string& message) {
    int n = 0;
    for (const Commit& c : History(head)) {
      if (c.message == message) ++n;
    }
    return n;
  }

  NodeStorePtr store_;
  std::unique_ptr<ForkbaseServlet> servlet_;
  std::unique_ptr<net::SiriServer> server_;
};

// --- idempotent surface under every fault kind ------------------------

TEST_F(ChaosServerTest, IdempotentOpsSurviveEveryDestructiveFaultKind) {
  const FaultKind kinds[] = {FaultKind::kResetBeforeSend,
                             FaultKind::kShortWrite, FaultKind::kCorruptFrame,
                             FaultKind::kResetAfterSend};
  for (const FaultKind kind : kinds) {
    SCOPED_TRACE(net::FaultKindName(kind));
    auto fault = std::make_shared<FaultInjector>();
    auto opts = FastRetryOptions();
    opts.fault = fault;
    auto t = Connect(opts);
    ASSERT_NE(t, nullptr);

    const std::string payload =
        std::string("chaos-") + net::FaultKindName(kind);
    auto put = t->Put(payload);
    ASSERT_TRUE(put.ok()) << put.status().ToString();

    fault->ScriptNext({kind, 0});
    auto got = t->Get(*put);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(**got, payload);

    const auto ts = t->stats();
    EXPECT_GE(ts.retries, 1u);
    EXPECT_GE(ts.reconnects, 1u);
    EXPECT_EQ(fault->stats().injected, 1u);
  }
  // The corrupt frames were counted (and survived) server-side too.
  EXPECT_GE(server_->stats().frame_errors, 1u);
}

TEST_F(ChaosServerTest, DelayFaultsSlowButNeverFail) {
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);
  auto put = t->Put(std::string(64, 'd'));
  ASSERT_TRUE(put.ok());
  fault->ScriptNext({FaultKind::kDelaySend, 3000});
  auto got = t->Get(*put);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  fault->ScriptNext({FaultKind::kDelayRecv, 3000});
  got = t->Get(*put);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // A delay is not a failure: no retry, no reconnect.
  EXPECT_EQ(t->stats().retries, 0u);
  EXPECT_EQ(t->stats().reconnects, 0u);
  EXPECT_EQ(fault->stats().delays, 2u);
}

TEST_F(ChaosServerTest, PutManySurvivesLostAckWithoutDataLoss) {
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  NodeBatch batch;
  for (int i = 0; i < 8; ++i) {
    auto bytes = std::make_shared<const std::string>(
        "chaos-batch-" + std::to_string(i) + std::string(128, 'p'));
    batch.push_back({Sha256::Digest(*bytes), bytes});
  }
  // Lost ack on the upload: PutMany is content-addressed, so the replay
  // re-stores identical bytes under identical digests — the ambiguity is
  // harmless by construction.
  fault->ScriptNext({FaultKind::kResetAfterSend, 0});
  ASSERT_TRUE(t->PutMany(batch).ok());
  for (const auto& rec : batch) {
    EXPECT_TRUE(store_->Contains(rec.hash));
  }
  EXPECT_GE(t->stats().retries, 1u);
}

// --- publish idempotency (the satellite-4 unit tests) ------------------

TEST_F(ChaosServerTest, PublishTornSendIsReplayedExactlyOnce) {
  // A torn frame never executes (the length prefix keeps the server
  // waiting for bytes that never come), so the replay is the FIRST
  // execution — one commit, not two.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "chaos";
  pub.message = "torn-send";
  fault->ScriptNext({FaultKind::kShortWrite, 0});
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_GE(t->stats().retries, 1u);

  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 1u);
  EXPECT_EQ(MessageCount(published->head, "torn-send"), 1);
}

TEST_F(ChaosServerTest, PublishCorruptFrameIsReplayedExactlyOnce) {
  // A bit-flipped frame draws the server's typed "bad frame" reject —
  // provably not executed, so the replay cannot double-apply.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "chaos";
  pub.message = "corrupt-frame";
  fault->ScriptNext({FaultKind::kCorruptFrame, 0});
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 1u);
  EXPECT_EQ(MessageCount(published->head, "corrupt-frame"), 1);
  EXPECT_GE(server_->stats().frame_errors, 1u);
}

TEST_F(ChaosServerTest, PublishLostAckResolvesAsAppliedWithoutDuplicate) {
  // The classic lost ack: the full publish frame reached the server (which
  // applied it), but the connection died before the response. A blind
  // replay would land a second, degenerate merge commit; the transport
  // must instead prove the publish applied by head inspection and return
  // success with the commit the server actually wrote.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  PosTree index(store_);
  auto root1 = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root1.ok());
  net::PublishRequest first;
  first.structure = "pos";
  first.branch = "main";
  first.new_root = *root1;
  first.author = "chaos";
  first.message = "first";
  auto head0 = t->Publish(first);
  ASSERT_TRUE(head0.ok());

  auto root2 = index.PutBatch(*root1, {{"chaos/second", "v"}});
  ASSERT_TRUE(root2.ok());
  net::PublishRequest second;
  second.structure = "pos";
  second.branch = "main";
  second.new_root = *root2;
  second.author = "chaos";
  second.message = "second";
  second.expected_head = head0->head;

  fault->ScriptNext({FaultKind::kResetAfterSend, 0});
  auto published = t->Publish(second);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(fault->stats().resets_after_send, 1u);

  // The resolution returned the very commit the server wrote: the digest
  // is decidable client-side because commits are content-addressed.
  Commit want;
  want.root = *root2;
  want.parents.push_back(head0->head);
  want.author = "chaos";
  want.message = "second";
  want.sequence = 1;
  EXPECT_EQ(published->commit, Sha256::Digest(want.Encode()));

  // Exactly two commits on the branch, each message exactly once: the
  // applied-but-unacked publish was NOT replayed.
  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 2u);
  EXPECT_EQ(MessageCount(published->head, "first"), 1);
  EXPECT_EQ(MessageCount(published->head, "second"), 1);

  // And the acked state is really there.
  auto head = t->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet_->branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  auto got = index.Get(commit->root, "chaos/second", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
}

TEST_F(ChaosServerTest, PublishLostAckOnBranchCreationResolves) {
  // Lost ack on the very first commit of a branch (no expected_head):
  // resolution must handle the no-parent reconstruction too.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(5));
  ASSERT_TRUE(root.ok());
  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "fresh";
  pub.new_root = *root;
  pub.author = "chaos";
  pub.message = "genesis";
  fault->ScriptNext({FaultKind::kResetAfterSend, 0});
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(servlet_->branches()->branch_stats("fresh").commits, 1u);
  EXPECT_EQ(MessageCount(published->head, "genesis"), 1);
}

// --- typed exhaustion and deadlines ------------------------------------

TEST_F(ChaosServerTest, RetryExhaustionIsTypedUnavailableAndBounded) {
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.retry.max_attempts = 3;
  opts.fault = fault;
  auto t = Connect(opts);  // handshake is attempt 0, unscripted
  ASSERT_NE(t, nullptr);
  // Every later wire attempt — exchanges and reconnect handshakes alike —
  // is reset before a byte moves.
  for (uint64_t i = 1; i < 64; ++i) {
    fault->ScriptAt(i, {FaultKind::kResetBeforeSend, 0});
  }
  const auto start = std::chrono::steady_clock::now();
  auto got = t->Get(Sha256::Digest("unreachable"));
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
  // Bounded: 3 attempts x tiny backoff, not a hang.
  EXPECT_LT(ElapsedMs(start), 5000);
  EXPECT_GE(t->stats().retries, 2u);
}

TEST_F(ChaosServerTest, ExplicitCloseIsPermanentNotRetried) {
  auto t = Connect(FastRetryOptions());
  ASSERT_NE(t, nullptr);
  t->Close();
  const auto start = std::chrono::steady_clock::now();
  auto got = t->Get(Sha256::Digest("closed"));
  EXPECT_EQ(got.status().code(), Status::Code::kIOError)
      << got.status().ToString();
  // Fail-fast: an instruction, not a fault — no backoff was spent.
  EXPECT_LT(ElapsedMs(start), 1000);
  EXPECT_EQ(t->stats().retries, 0u);
}

/// Binds 127.0.0.1:ephemeral and returns {fd, port} (same helper shape as
/// net_process_test.cc).
void BindLoopback(int* fd, int* port) {
  *fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(*fd, 0);
  const int one = 1;
  setsockopt(*fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(*fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(*fd, 64), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(*fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  *port = ntohs(addr.sin_port);
}

TEST(DeadlineTest, StalledServerMissesDeadlineTypedAndCounted) {
  // A hand-rolled peer that completes the Hello, then goes silent: the
  // next RPC can only end by deadline.
  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);
  std::thread stall([listen_fd] {
    const int c = accept(listen_fd, nullptr, nullptr);
    if (c < 0) return;
    net::FrameDecoder dec;
    char buf[4096];
    std::string payload;
    for (;;) {
      auto next = dec.Next(&payload);
      if (!next.ok()) break;
      if (*next) break;
      const ssize_t n = recv(c, buf, sizeof(buf), 0);
      if (n <= 0) {
        close(c);
        return;
      }
      dec.Append(buf, static_cast<size_t>(n));
    }
    std::string body;
    PutVarint64(&body, net::kWireVersion);
    // Hello responses are always v1-shaped (they precede negotiation).
    const std::string resp = net::EncodeFrame(
        net::EncodeResponse(Status::OK(), body, /*wire_version=*/1));
    (void)send(c, resp.data(), resp.size(), MSG_NOSIGNAL);
    // Swallow everything else without ever answering, until the client
    // hangs up.
    while (recv(c, buf, sizeof(buf), 0) > 0) {
    }
    close(c);
  });

  net::SocketTransport::Options opts;
  opts.rpc_timeout_ms = 150;
  opts.auto_reconnect = false;  // surface the miss directly, no retry
  opts.retry.max_attempts = 1;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &t, opts).ok());

  const auto start = std::chrono::steady_clock::now();
  auto got = t->Get(Sha256::Digest("stalled"));
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_EQ(got.status().code(), Status::Code::kIOError)
      << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("deadline"), std::string::npos)
      << got.status().ToString();
  EXPECT_GE(elapsed, 100);
  EXPECT_LT(elapsed, 5000);
  EXPECT_EQ(t->stats().deadline_misses, 1u);

  t->Close();  // EOF unblocks the stall thread
  stall.join();
  close(listen_fd);
}

TEST(DeadlineTest, DribblingServerCannotResetTheWholeAttemptDeadline) {
  // The sharper regression: a server that trickles ONE response byte per
  // poll interval. Under a per-poll timeout every poll sees progress and
  // the attempt never ends; rpc_timeout_ms is a *whole-attempt* monotonic
  // budget, so the dribble must still miss it on time.
  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);
  std::atomic<bool> stop{false};
  std::thread dribble([listen_fd, &stop] {
    const int c = accept(listen_fd, nullptr, nullptr);
    if (c < 0) return;
    net::FrameDecoder dec;
    char buf[4096];
    std::string payload;
    // Round 1: complete the Hello honestly (v1-shaped both ways).
    auto read_frame = [&]() -> bool {
      for (;;) {
        auto next = dec.Next(&payload);
        if (!next.ok()) return false;
        if (*next) return true;
        const ssize_t n = recv(c, buf, sizeof(buf), 0);
        if (n <= 0) return false;
        dec.Append(buf, static_cast<size_t>(n));
      }
    };
    if (!read_frame()) {
      close(c);
      return;
    }
    std::string body;
    PutVarint64(&body, net::kWireVersion);
    const std::string hello = net::EncodeFrame(
        net::EncodeResponse(Status::OK(), body, /*wire_version=*/1));
    (void)send(c, hello.data(), hello.size(), MSG_NOSIGNAL);
    // Round 2: read the request, then answer it one byte at a time — a
    // steady trickle of real protocol bytes, never a stall, never an end.
    if (!read_frame()) {
      close(c);
      return;
    }
    net::Request req;
    if (net::DecodeRequest(payload, &req, net::kWireVersion).ok()) {
      const std::string resp = net::EncodeFrame(net::EncodeResponse(
          Status::NotFound("not here"), "", net::kWireVersion, req.corr_id));
      for (size_t i = 0; i < resp.size() && !stop.load(); ++i) {
        if (send(c, resp.data() + i, 1, MSG_NOSIGNAL) != 1) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    close(c);
  });

  net::SocketTransport::Options opts;
  opts.rpc_timeout_ms = 200;
  opts.auto_reconnect = false;
  opts.retry.max_attempts = 1;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &t, opts).ok());

  const auto start = std::chrono::steady_clock::now();
  auto got = t->Get(Sha256::Digest("dribbled"));
  const int64_t elapsed = ElapsedMs(start);
  EXPECT_EQ(got.status().code(), Status::Code::kIOError)
      << got.status().ToString();
  EXPECT_NE(got.status().ToString().find("deadline"), std::string::npos)
      << got.status().ToString();
  // The response is tens of bytes: at one byte per 25ms a per-poll budget
  // would have let the dribble run for seconds. The whole-attempt budget
  // ends it at ~200ms.
  EXPECT_GE(elapsed, 150);
  EXPECT_LT(elapsed, 2000);
  EXPECT_GE(t->stats().deadline_misses, 1u);

  stop.store(true);
  t->Close();
  dribble.join();
  close(listen_fd);
}

// --- short-write offset boundaries -------------------------------------

TEST_F(ChaosServerTest, ShortWriteAtEveryOffsetBoundaryRecovers) {
  // kShortWrite with a scripted cut offset, swept across the exact frame
  // boundaries: nothing sent, one byte, mid-frame, one byte short, and the
  // full frame (a "short" write that actually delivered everything). Every
  // case must classify, close, replay, and succeed — never spin.
  const std::string payload = "short-write-sweep";
  const Hash h = Sha256::Digest(payload);
  // The Get request frame size is deterministic while corr ids stay
  // 1-byte varints: type | corr | 32-byte hash, framed.
  net::Request probe;
  probe.type = net::MsgType::kGet;
  probe.corr_id = 1;
  probe.hash = h;
  const uint64_t frame_size =
      net::EncodeFrame(net::EncodeRequest(probe, net::kWireVersion)).size();

  const uint64_t offsets[] = {0, 1, frame_size / 2, frame_size - 1,
                              frame_size};
  for (const uint64_t off : offsets) {
    SCOPED_TRACE("cut offset " + std::to_string(off));
    auto fault = std::make_shared<FaultInjector>();
    auto opts = FastRetryOptions();
    opts.fault = fault;
    auto t = Connect(opts);
    ASSERT_NE(t, nullptr);
    auto put = t->Put(payload);
    ASSERT_TRUE(put.ok());

    fault->ScriptNext({FaultKind::kShortWrite, 0, off});
    auto got = t->Get(h);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(**got, payload);
    const auto ts = t->stats();
    EXPECT_GE(ts.retries, 1u);
    EXPECT_GE(ts.reconnects, 1u);
    EXPECT_EQ(fault->stats().injected, 1u);
  }
}

TEST_F(ChaosServerTest, PublishShortWriteOneByteShortIsTornNotExecuted) {
  // Cut one byte before the end: the server never sees a complete frame,
  // so the publish provably did not execute and the replay is the first
  // execution — exactly one commit, via the replay path (not resolution).
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  // Build the index server-side so the publish is the transport's first
  // RPC (corr id 1 → the frame size is computable client-side).
  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "chaos";
  pub.message = "torn-boundary";
  net::Request probe;
  probe.type = net::MsgType::kPublish;
  probe.corr_id = 1;
  probe.structure = pub.structure;
  probe.branch = pub.branch;
  probe.new_root = pub.new_root;
  probe.author = pub.author;
  probe.message = pub.message;
  const uint64_t frame_size =
      net::EncodeFrame(net::EncodeRequest(probe, net::kWireVersion)).size();

  fault->ScriptNext({FaultKind::kShortWrite, 0, frame_size - 1});
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_GE(t->stats().retries, 1u);
  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 1u);
  EXPECT_EQ(MessageCount(published->head, "torn-boundary"), 1);
  // Exactly one server-side execution: torn frames are replayed, and the
  // replay is the only run.
  const CommitCombiner::Stats cs = servlet_->combiner()->stats();
  EXPECT_EQ(cs.solo_commits + cs.combined_commits + cs.fallbacks, 1u);
}

TEST_F(ChaosServerTest, PublishShortWriteOfFullFrameIsAmbiguousNotReplayed) {
  // Cut *at* the frame size: every byte was delivered before the close, so
  // the server executed the publish and only the ack was lost. Classifying
  // this torn (kNotExecuted) would blindly replay an applied commit; it
  // must classify ambiguous and prove the publish applied instead.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "chaos";
  pub.message = "delivered-boundary";
  net::Request probe;
  probe.type = net::MsgType::kPublish;
  probe.corr_id = 1;
  probe.structure = pub.structure;
  probe.branch = pub.branch;
  probe.new_root = pub.new_root;
  probe.author = pub.author;
  probe.message = pub.message;
  const uint64_t frame_size =
      net::EncodeFrame(net::EncodeRequest(probe, net::kWireVersion)).size();

  fault->ScriptNext({FaultKind::kShortWrite, 0, frame_size});
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 1u);
  EXPECT_EQ(MessageCount(published->head, "delivered-boundary"), 1);
  // ONE execution, and it was the original send — resolution, not replay.
  // A torn misclassification would score 2 here.
  const CommitCombiner::Stats cs = servlet_->combiner()->stats();
  EXPECT_EQ(cs.solo_commits + cs.combined_commits + cs.fallbacks, 1u);
}

// --- pipelining × chaos ------------------------------------------------

TEST_F(ChaosServerTest, PublishLostAckResolvesUnderPipelinedConcurrentTraffic) {
  // The lost-ack resolution rerun with the connection pipelined and busy:
  // concurrent readers share the transport before and after the faulted
  // publish, and exactly-once must still hold.
  auto fault = std::make_shared<FaultInjector>();
  auto opts = FastRetryOptions();
  opts.max_inflight = 8;
  opts.fault = fault;
  auto t = Connect(opts);
  ASSERT_NE(t, nullptr);

  constexpr int kThreads = 4;
  constexpr int kGetsPerThread = 16;
  std::vector<Hash> hashes;
  for (int i = 0; i < kGetsPerThread; ++i) {
    const std::string payload = "pipelined-chaos-" + std::to_string(i);
    auto put = t->Put(payload);
    ASSERT_TRUE(put.ok());
    hashes.push_back(*put);
  }
  auto hammer = [&]() {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        for (const Hash& h : hashes) {
          auto got = t->Get(h);
          if (!got.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    return failures.load();
  };
  ASSERT_EQ(hammer(), 0);  // pipelined traffic is healthy pre-fault

  PosTree index(store_);
  auto root1 = index.PutBatch(index.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(root1.ok());
  net::PublishRequest first;
  first.structure = "pos";
  first.branch = "main";
  first.new_root = *root1;
  first.author = "chaos";
  first.message = "pipelined-first";
  auto head0 = t->Publish(first);
  ASSERT_TRUE(head0.ok());

  auto root2 = index.PutBatch(*root1, {{"pipelined/second", "v"}});
  ASSERT_TRUE(root2.ok());
  net::PublishRequest second;
  second.structure = "pos";
  second.branch = "main";
  second.new_root = *root2;
  second.author = "chaos";
  second.message = "pipelined-second";
  second.expected_head = head0->head;
  fault->ScriptNext({FaultKind::kResetAfterSend, 0});
  auto published = t->Publish(second);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(fault->stats().resets_after_send, 1u);

  // Exactly-once under pipelining: two commits, each message once.
  EXPECT_EQ(servlet_->branches()->branch_stats("main").commits, 2u);
  EXPECT_EQ(MessageCount(published->head, "pipelined-first"), 1);
  EXPECT_EQ(MessageCount(published->head, "pipelined-second"), 1);

  ASSERT_EQ(hammer(), 0);  // and the channel recovered to full depth
}

// --- in-order per-branch sequencing ------------------------------------

/// Every commit reachable from \p head must carry a sequence strictly
/// greater than each of its parents' — the per-branch in-order invariant
/// the pipelined channel must not break.
void ExpectMonotonicSequences(BranchManager* branches, const Hash& head) {
  std::deque<Hash> frontier{head};
  std::set<std::string> seen{head.ToHex()};
  while (!frontier.empty()) {
    const Hash h = frontier.front();
    frontier.pop_front();
    auto c = branches->ReadCommit(h);
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    for (const Hash& p : c->parents) {
      auto parent = branches->ReadCommit(p);
      ASSERT_TRUE(parent.ok()) << parent.status().ToString();
      EXPECT_LT(parent->sequence, c->sequence)
          << "commit " << h.ToHex() << " does not dominate parent "
          << p.ToHex();
      if (seen.insert(p.ToHex()).second) frontier.push_back(p);
    }
  }
}

TEST(ServerDegradationTest, MaxConnectionsRejectIsTypedAndRecovers) {
  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.group_flush_window_micros = 0;
  sopts.max_connections = 1;
  net::SiriServer server(&servlet, sopts);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());

  std::shared_ptr<net::SocketTransport> first;
  ASSERT_TRUE(
      net::SocketTransport::Connect("127.0.0.1", server.port(), &first).ok());
  ASSERT_TRUE(first->Flush().ok());

  // Over capacity: the reject is a typed ResourceExhausted response, not
  // a bare RST — the client knows to back off, and after its (short)
  // policy it reports the server's own words.
  auto opts = FastRetryOptions();
  opts.retry.max_attempts = 2;
  std::shared_ptr<net::SocketTransport> second;
  const Status rejected =
      net::SocketTransport::Connect("127.0.0.1", server.port(), &second, opts);
  EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected.ToString();
  EXPECT_GE(server.stats().overload_rejects, 1u);

  // Capacity freed, the same client gets in (the server notices the close
  // on its next event-loop pass).
  first->Close();
  Status admitted = Status::Unavailable("never tried");
  const auto start = std::chrono::steady_clock::now();
  while (ElapsedMs(start) < 10000) {
    admitted = net::SocketTransport::Connect("127.0.0.1", server.port(),
                                             &second, opts);
    if (admitted.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(admitted.ok()) << admitted.ToString();
  EXPECT_TRUE(second->Flush().ok());
  server.Stop();
}

TEST(ServerDegradationTest, IdleConnectionsAreReapedAndClientRecovers) {
  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::ServerOptions sopts;
  sopts.worker_threads = 2;
  sopts.group_flush_window_micros = 0;
  sopts.idle_timeout_ms = 100;
  net::SiriServer server(&servlet, sopts);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());

  auto opts = FastRetryOptions();
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(
      net::SocketTransport::Connect("127.0.0.1", server.port(), &t, opts).ok());
  auto put = t->Put(std::string(32, 'i'));
  ASSERT_TRUE(put.ok());

  // Go idle past the timeout; the event-loop tick reaps the connection.
  const auto start = std::chrono::steady_clock::now();
  while (server.stats().idle_reaped == 0 && ElapsedMs(start) < 10000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(server.stats().idle_reaped, 1u);

  // The reap is invisible to the client: the next RPC reconnects and
  // succeeds (Get is idempotent, so even an ambiguous first attempt on
  // the dead fd is replayed).
  auto got = t->Get(*put);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GE(t->stats().reconnects, 1u);
  server.Stop();
}

TEST(ServerDegradationTest, DrainPersistsEveryAckedCommit) {
  const std::string base = ::testing::TempDir() + "/siri_chaos_drain_" +
                           std::to_string(getpid());
  const std::string pages = base + "_pages.log";
  const std::string refs = base + "_refs.log";
  std::remove(pages.c_str());
  std::remove(refs.c_str());

  std::vector<Hash> acked_heads;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(pages, &store).ok());
    ForkbaseServlet servlet(store);
    ASSERT_TRUE(servlet.branches()->AttachRefLog(refs).ok());
    servlet.RegisterIndex(std::make_unique<PosTree>(store));
    net::SiriServer server(&servlet);
    ASSERT_TRUE(server.Listen(0).ok());
    ASSERT_TRUE(server.Start().ok());

    std::shared_ptr<net::SocketTransport> t;
    ASSERT_TRUE(
        net::SocketTransport::Connect("127.0.0.1", server.port(), &t).ok());
    auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
    PosTree index(client_store);
    Hash root = index.EmptyRoot();
    std::optional<Hash> expected;
    for (int c = 0; c < 3; ++c) {
      auto next = index.PutBatch(
          root, {{"drain/k" + std::to_string(c), "v" + std::to_string(c)}});
      ASSERT_TRUE(next.ok());
      ASSERT_TRUE(client_store->Flush().ok());
      net::PublishRequest pub;
      pub.structure = "pos";
      pub.branch = "main";
      pub.new_root = *next;
      pub.author = "drainer";
      pub.message = "c" + std::to_string(c);
      pub.expected_head = expected;
      auto published = t->Publish(pub);
      ASSERT_TRUE(published.ok()) << published.status().ToString();
      acked_heads.push_back(published->head);
      expected = published->head;
      root = *next;
    }

    // Graceful drain with the client still connected: the open connection
    // is closed once idle, the store and ref log reach their durability
    // points, and the summary reports what happened.
    const auto summary = server.Drain();
    EXPECT_GE(summary.connections_closed, 1u);
  }  // server, servlet, store all torn down — the files are all that's left

  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(pages, &reopened).ok());
  BranchManager mgr(reopened);
  ASSERT_TRUE(mgr.AttachRefLog(refs).ok());
  auto head = mgr.Head("main");
  ASSERT_TRUE(head.ok()) << "acked head lost by drain";
  EXPECT_EQ(*head, acked_heads.back());
  auto commit = mgr.ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  PosTree recovered(reopened);
  for (int c = 0; c < 3; ++c) {
    auto got = recovered.Get(commit->root, "drain/k" + std::to_string(c),
                             nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "v" + std::to_string(c));
  }
  std::remove(pages.c_str());
  std::remove(refs.c_str());
}

// --- forked chaos stress -----------------------------------------------

/// Scaled up by the chaos-labeled ctest entry (SIRI_CHAOS=1); the default
/// suite runs the small shape.
bool ChaosHeavy() {
  const char* e = std::getenv("SIRI_CHAOS");
  return e != nullptr && e[0] == '1';
}

/// One forked client committing through a seeded random fault stream.
/// Exit codes identify the failing step; exit 17 = a publish blew the
/// latency bound (the "bounded latency" invariant).
void RunChaosClient(int port, int id, int commits, double fault_rate) {
  FaultInjector::RandomConfig cfg;
  cfg.fault_rate = fault_rate;
  cfg.delay_micros = 1000;
  net::SocketTransport::Options topts;
  topts.connect_retry_ms = 10000;
  topts.rpc_timeout_ms = 10000;
  topts.retry.max_attempts = 10;
  topts.retry.backoff_init_ms = 2;
  topts.retry.backoff_max_ms = 50;
  topts.retry.jitter_seed = 0x1000u + static_cast<uint64_t>(id);
  topts.fault =
      std::make_shared<FaultInjector>(0x2000u + static_cast<uint64_t>(id), cfg);
  std::shared_ptr<net::SocketTransport> t;
  if (!net::SocketTransport::Connect("127.0.0.1", port, &t, topts).ok()) {
    _exit(10);
  }
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
  PosTree index(client_store);
  for (int c = 0; c < commits; ++c) {
    const auto started = std::chrono::steady_clock::now();
    Hash base = index.EmptyRoot();
    std::optional<Hash> expected;
    auto head = t->Head("main");
    if (head.ok()) {
      auto node = client_store->Get(*head);
      if (!node.ok()) _exit(16);
      auto commit = Commit::Decode(**node);
      if (!commit.ok()) _exit(11);
      base = commit->root;
      expected = *head;
    } else if (!head.status().IsNotFound()) {
      _exit(12);
    }
    const std::string key =
        "chaos" + std::to_string(id) + "/k" + std::to_string(c);
    auto root = index.PutBatch(base, {{key, "v" + std::to_string(c)}});
    if (!root.ok()) _exit(13);
    if (!client_store->Flush().ok()) _exit(14);
    net::PublishRequest pub;
    pub.structure = "pos";
    pub.branch = "main";
    pub.new_root = *root;
    pub.author = "chaos" + std::to_string(id);
    pub.message = key;
    pub.expected_head = expected;
    auto published = t->Publish(pub);
    if (!published.ok()) _exit(15);
    if (ElapsedMs(started) > 30000) _exit(17);
  }
  _exit(0);
}

TEST(ChaosProcessTest, ForkedClientsCommitThroughRandomFaults) {
  const int kClients = ChaosHeavy() ? 4 : 2;
  const int kCommitsEach = ChaosHeavy() ? 10 : 4;
  const double kFaultRate = ChaosHeavy() ? 0.15 : 0.08;

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  // Fork the clients BEFORE the parent spawns server threads (same rule
  // as net_process_test.cc: fork in a multithreaded parent only
  // reproduces the forking thread).
  std::vector<pid_t> pids;
  for (int id = 0; id < kClients; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(listen_fd);
      RunChaosClient(port, id, kCommitsEach, kFaultRate);
    }
    pids.push_back(pid);
  }

  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.AdoptListener(listen_fd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "chaos client failed";
  }

  // Invariant 1 — zero lost acked updates: every client exited 0, so
  // every one of its publishes was acked; every acked key must be in the
  // final version.
  auto head = servlet.branches()->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet.branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  PosTree index(store);
  for (int id = 0; id < kClients; ++id) {
    for (int c = 0; c < kCommitsEach; ++c) {
      const std::string key =
          "chaos" + std::to_string(id) + "/k" + std::to_string(c);
      auto got = index.Get(commit->root, key, nullptr);
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->has_value()) << "lost acked update: " << key;
    }
  }

  // Invariant 2 — zero duplicated commits: each acked publish executed on
  // the server exactly once. A lost-ack replay that double-applied would
  // push the combiner's executed-publish count past the acked count; a
  // wrongly-suppressed replay would fall short (and show up above as a
  // lost update).
  const uint64_t acked = static_cast<uint64_t>(kClients * kCommitsEach);
  const CommitCombiner::Stats cs = servlet.combiner()->stats();
  EXPECT_EQ(cs.solo_commits + cs.combined_commits + cs.fallbacks, acked);

  // Invariant 3 — in-order per-branch sequencing: every commit dominates
  // its parents.
  ExpectMonotonicSequences(servlet.branches(), *head);
  server.Stop();
}

/// The pipelined variant of RunChaosClient: one forked process, ONE
/// transport with max_inflight depth, and two threads committing through
/// it concurrently against the same seeded random fault stream. Exit
/// codes match RunChaosClient's.
void RunPipelinedChaosClient(int port, int id, int commits_per_thread,
                             double fault_rate) {
  FaultInjector::RandomConfig cfg;
  cfg.fault_rate = fault_rate;
  cfg.delay_micros = 1000;
  net::SocketTransport::Options topts;
  topts.connect_retry_ms = 10000;
  topts.rpc_timeout_ms = 10000;
  topts.max_inflight = 8;
  topts.retry.max_attempts = 10;
  topts.retry.backoff_init_ms = 2;
  topts.retry.backoff_max_ms = 50;
  topts.retry.jitter_seed = 0x3000u + static_cast<uint64_t>(id);
  topts.fault =
      std::make_shared<FaultInjector>(0x4000u + static_cast<uint64_t>(id), cfg);
  std::shared_ptr<net::SocketTransport> t;
  if (!net::SocketTransport::Connect("127.0.0.1", port, &t, topts).ok()) {
    _exit(10);
  }
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 8 << 20);
  std::atomic<int> first_error{0};
  auto fail = [&first_error](int code) {
    int expected = 0;
    first_error.compare_exchange_strong(expected, code);
  };
  auto worker = [&](int tid) {
    PosTree index(client_store);
    for (int c = 0; c < commits_per_thread && first_error.load() == 0; ++c) {
      const auto started = std::chrono::steady_clock::now();
      Hash base = index.EmptyRoot();
      std::optional<Hash> expected;
      auto head = t->Head("main");
      if (head.ok()) {
        auto node = client_store->Get(*head);
        if (!node.ok()) return fail(16);
        auto commit = Commit::Decode(**node);
        if (!commit.ok()) return fail(11);
        base = commit->root;
        expected = *head;
      } else if (!head.status().IsNotFound()) {
        return fail(12);
      }
      const std::string key = "chaos" + std::to_string(id) + "t" +
                              std::to_string(tid) + "/k" + std::to_string(c);
      auto root = index.PutBatch(base, {{key, "v" + std::to_string(c)}});
      if (!root.ok()) return fail(13);
      if (!client_store->Flush().ok()) return fail(14);
      net::PublishRequest pub;
      pub.structure = "pos";
      pub.branch = "main";
      pub.new_root = *root;
      pub.author = "chaos" + std::to_string(id);
      pub.message = key;
      pub.expected_head = expected;
      auto published = t->Publish(pub);
      if (!published.ok()) return fail(15);
      if (ElapsedMs(started) > 30000) return fail(17);
    }
  };
  std::thread a(worker, 0), b(worker, 1);
  a.join();
  b.join();
  _exit(first_error.load());
}

TEST(ChaosProcessTest, ForkedPipelinedClientsCommitThroughRandomFaults) {
  // Satellite: the random-fault stress rerun with max_inflight > 1 and
  // intra-process concurrency on the shared connection. Same three
  // invariants — zero lost, zero duplicated, bounded — plus per-branch
  // sequence monotonicity.
  const int kClients = ChaosHeavy() ? 3 : 2;
  const int kCommitsPerThread = ChaosHeavy() ? 6 : 3;
  const double kFaultRate = ChaosHeavy() ? 0.12 : 0.06;
  constexpr int kThreadsPerClient = 2;

  int listen_fd = -1;
  int port = 0;
  BindLoopback(&listen_fd, &port);

  std::vector<pid_t> pids;
  for (int id = 0; id < kClients; ++id) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      close(listen_fd);
      RunPipelinedChaosClient(port, id, kCommitsPerThread, kFaultRate);
    }
    pids.push_back(pid);
  }

  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  servlet.RegisterIndex(std::make_unique<PosTree>(store));
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.AdoptListener(listen_fd).ok());
  ASSERT_TRUE(server.Start().ok());

  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "pipelined chaos client failed";
  }

  auto head = servlet.branches()->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet.branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  PosTree index(store);
  for (int id = 0; id < kClients; ++id) {
    for (int tid = 0; tid < kThreadsPerClient; ++tid) {
      for (int c = 0; c < kCommitsPerThread; ++c) {
        const std::string key = "chaos" + std::to_string(id) + "t" +
                                std::to_string(tid) + "/k" + std::to_string(c);
        auto got = index.Get(commit->root, key, nullptr);
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->has_value()) << "lost acked update: " << key;
      }
    }
  }

  const uint64_t acked =
      static_cast<uint64_t>(kClients * kThreadsPerClient * kCommitsPerThread);
  const CommitCombiner::Stats cs = servlet.combiner()->stats();
  EXPECT_EQ(cs.solo_commits + cs.combined_commits + cs.fallbacks, acked);
  ExpectMonotonicSequences(servlet.branches(), *head);
  server.Stop();
}

}  // namespace
}  // namespace siri
