// Copyright (c) 2026 The siri Authors. MIT license.
//
// MBT-specific behavior: static skeleton, bucket placement, constant
// depth, positional diff, and the fixed node-count property Figure 14(b)
// relies on.

#include <gtest/gtest.h>

#include "index/mbt/mbt.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;

class MbtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    MbtOptions opt;
    opt.num_buckets = 64;
    opt.fanout = 4;
    mbt_ = std::make_unique<Mbt>(store_, opt);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<Mbt> mbt_;
};

TEST_F(MbtTest, EmptyRootIsARealTree) {
  const Hash root = mbt_->EmptyRoot();
  EXPECT_FALSE(root.IsZero());
  EXPECT_TRUE(store_->Contains(root));
  EXPECT_EQ(Dump(*mbt_, root).size(), 0u);
}

TEST_F(MbtTest, EmptyTreeDeduplicatesToFewNodes) {
  // 64 empty buckets are one shared page; each level adds at most a couple
  // of distinct nodes.
  PageSet pages;
  ASSERT_TRUE(mbt_->CollectPages(mbt_->EmptyRoot(), &pages).ok());
  EXPECT_LE(pages.size(), 1u + 2u * 4u);  // empty bucket + <=2 per level
}

TEST_F(MbtTest, LookupDepthIsConstant) {
  auto small = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(small.ok());
  auto large = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(large.ok());

  LookupStats s_small, s_large;
  ASSERT_TRUE(mbt_->Get(*small, TKey(5), &s_small).ok());
  ASSERT_TRUE(mbt_->Get(*large, TKey(5), &s_large).ok());
  // Depth = internal levels + bucket, independent of N (§4.1.1: the N/B
  // term hits scan cost, not path length).
  EXPECT_EQ(s_small.depth, s_large.depth);
  EXPECT_EQ(s_large.depth, mbt_->num_levels() + 1);
}

TEST_F(MbtTest, BucketIndexIsDeterministicAndInRange) {
  for (int i = 0; i < 500; ++i) {
    const uint64_t b = mbt_->BucketIndexOf(TKey(i));
    EXPECT_LT(b, 64u);
    EXPECT_EQ(b, mbt_->BucketIndexOf(TKey(i)));
  }
}

TEST_F(MbtTest, NodeCountIsFixedRegardlessOfN) {
  // "MBT generates the least number of nodes as the total number of nodes
  // is fixed for the structure" (§5.4.1).
  auto r1 = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(100));
  ASSERT_TRUE(r1.ok());
  auto r2 = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(3000));
  ASSERT_TRUE(r2.ok());
  PageSet p1, p2;
  ASSERT_TRUE(mbt_->CollectPages(*r1, &p1).ok());
  ASSERT_TRUE(mbt_->CollectPages(*r2, &p2).ok());
  // Page COUNT identical (modulo dedup of identical pages); buckets just
  // grow in size.
  const uint64_t skeleton = 64 + 16 + 4 + 1;
  EXPECT_LE(p1.size(), skeleton);
  EXPECT_LE(p2.size(), skeleton);
  // Larger dataset means larger buckets, not more nodes.
  EXPECT_GT(store_->BytesOf(p2), store_->BytesOf(p1));
}

TEST_F(MbtTest, UpdateRewritesOnlyOnePath) {
  auto base = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(1000));
  ASSERT_TRUE(base.ok());
  auto updated = mbt_->Put(*base, TKey(500), "new-value");
  ASSERT_TRUE(updated.ok());
  PageSet pb, pu;
  ASSERT_TRUE(mbt_->CollectPages(*base, &pb).ok());
  ASSERT_TRUE(mbt_->CollectPages(*updated, &pu).ok());
  size_t fresh = 0;
  for (const Hash& h : pu) {
    if (pb.count(h) == 0) ++fresh;
  }
  // Only the root-to-bucket path is rewritten: one node per level + bucket.
  EXPECT_LE(fresh, static_cast<size_t>(mbt_->num_levels()) + 1);
}

TEST_F(MbtTest, GetBreakdownSplitsLoadAndScan) {
  auto root = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(root.ok());
  uint64_t load_ns = 0, scan_ns = 0;
  auto got = mbt_->GetBreakdown(*root, TKey(123), &load_ns, &scan_ns);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_GT(load_ns, 0u);
}

TEST_F(MbtTest, DiffIsPositionalAndExact) {
  auto base = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(500));
  ASSERT_TRUE(base.ok());
  auto changed = mbt_->PutBatch(*base, {{TKey(7), "x"}, {"added", "y"}});
  ASSERT_TRUE(changed.ok());
  auto diff = mbt_->Diff(*base, *changed);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 2u);
  EXPECT_EQ((*diff)[0].key < (*diff)[1].key, true);  // sorted output
}

TEST_F(MbtTest, DiffSkipsSharedBuckets) {
  auto base = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(base.ok());
  auto changed = mbt_->Put(*base, TKey(100), "zzz");
  ASSERT_TRUE(changed.ok());
  store_->ResetOpCounters();
  auto diff = mbt_->Diff(*base, *changed);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  // Positional pruning: touched nodes ~ 2 paths, far fewer than 2*85 pages.
  EXPECT_LT(store_->stats().gets, 30u);
}

TEST_F(MbtTest, DiffRejectsMismatchedShape) {
  MbtOptions other_opt;
  other_opt.num_buckets = 32;
  other_opt.fanout = 4;
  Mbt other(store_, other_opt);
  auto r_other = other.PutBatch(other.EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(r_other.ok());
  auto r_mine = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(10));
  ASSERT_TRUE(r_mine.ok());
  auto diff = mbt_->Diff(*r_mine, *r_other);
  EXPECT_FALSE(diff.ok());
}

TEST_F(MbtTest, BucketsKeepEntriesSorted) {
  auto root = mbt_->PutBatch(mbt_->EmptyRoot(), MakeKvs(300));
  ASSERT_TRUE(root.ok());
  // Scan yields bucket-by-bucket; within a bucket, keys are sorted. Verify
  // via per-bucket grouping.
  std::map<uint64_t, std::vector<std::string>> per_bucket;
  ASSERT_TRUE(mbt_->Scan(*root, [&](Slice k, Slice) {
    per_bucket[mbt_->BucketIndexOf(k)].push_back(k.ToString());
  }).ok());
  for (const auto& [bucket, keys] : per_bucket) {
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end())) << bucket;
  }
}

TEST_F(MbtTest, SingleBucketConfigurationWorks) {
  MbtOptions opt;
  opt.num_buckets = 1;
  opt.fanout = 4;
  Mbt tiny(store_, opt);
  auto r = tiny.PutBatch(tiny.EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Dump(tiny, *r).size(), 50u);
}

}  // namespace
}  // namespace siri
