// Copyright (c) 2026 The siri Authors. MIT license.
//
// TreeCursor / LevelCursor over real POS trees: in-order iteration, seeks,
// chunk-boundary detection, and subtree skipping — the machinery both the
// pruned diff and the incremental rebuild stand on.

#include <gtest/gtest.h>

#include "index/ordered/tree_cursor.h"
#include "index/pos/pos_tree.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    tree_ = std::make_unique<PosTree>(store_);
    auto root = tree_->BuildFromSorted(MakeKvs(kN));
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  static constexpr int kN = 1000;
  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<PosTree> tree_;
  Hash root_;
};

TEST_F(CursorTest, IteratesAllEntriesInOrder) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  int i = 0;
  while (cur.Valid()) {
    EXPECT_EQ(cur.key(), TKey(i));
    EXPECT_EQ(cur.value(), TVal(i));
    ASSERT_TRUE(cur.Next().ok());
    ++i;
  }
  EXPECT_EQ(i, kN);
}

TEST_F(CursorTest, SeekLandsOnLowerBound) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.Seek(TKey(123)).ok());
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), TKey(123));

  // Seek between keys: key000123x sorts after key000123, before key000124.
  ASSERT_TRUE(cur.Seek(TKey(123) + "x").ok());
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), TKey(124));
}

TEST_F(CursorTest, SeekPastEndInvalidates) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.Seek("zzzzzz").ok());
  EXPECT_FALSE(cur.Valid());
}

TEST_F(CursorTest, SeekBeforeFirstLandsOnFirst) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.Seek("aaa").ok());
  ASSERT_TRUE(cur.Valid());
  EXPECT_EQ(cur.key(), TKey(0));
}

TEST_F(CursorTest, EmptyTreeCursorInvalid) {
  TreeCursor cur(store_.get(), Hash::Zero());
  ASSERT_TRUE(cur.SeekToFirst().ok());
  EXPECT_FALSE(cur.Valid());
}

TEST_F(CursorTest, SubtreeStartAtOrigin) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  // At the very first entry, every level is at its subtree start.
  for (int level = 0; level < cur.num_levels(); ++level) {
    EXPECT_TRUE(cur.AtSubtreeStart(level)) << level;
  }
}

TEST_F(CursorTest, SkipSubtreeAdvancesPastLeaf) {
  TreeCursor a(store_.get(), root_);
  TreeCursor b(store_.get(), root_);
  ASSERT_TRUE(a.SeekToFirst().ok());
  ASSERT_TRUE(b.SeekToFirst().ok());

  // Skip the first leaf on cursor a; advance b entry by entry until it
  // reaches a leaf boundary: they must agree.
  ASSERT_TRUE(a.SkipSubtree(0).ok());
  do {
    ASSERT_TRUE(b.Next().ok());
  } while (b.Valid() && !b.AtSubtreeStart(0));
  ASSERT_EQ(a.Valid(), b.Valid());
  if (a.Valid()) EXPECT_EQ(a.key(), b.key());
}

TEST_F(CursorTest, SkipWholeTreeInvalidates) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  const int top = cur.num_levels() - 1;
  ASSERT_TRUE(cur.SkipSubtree(top).ok());
  EXPECT_FALSE(cur.Valid());
}

TEST_F(CursorTest, SubtreeHashMatchesStoreContent) {
  TreeCursor cur(store_.get(), root_);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  const Hash leaf_hash = cur.SubtreeHash(0);
  auto bytes = store_->Get(leaf_hash);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(IsLeafNode(**bytes));
  // The root-level subtree digest is the root itself.
  EXPECT_EQ(cur.SubtreeHash(cur.num_levels() - 1), root_);
}

TEST_F(CursorTest, LevelCursorLeafLevelSeesAllItems) {
  LevelCursor cur(store_.get(), root_, /*level=*/0);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  int count = 0;
  std::string prev;
  while (cur.Valid()) {
    if (count > 0) EXPECT_LT(prev, cur.item().key);
    prev = cur.item().key;
    ASSERT_TRUE(cur.Next().ok());
    ++count;
  }
  EXPECT_EQ(count, kN);
}

TEST_F(CursorTest, LevelCursorUpperLevelItemsAreChildDigests) {
  auto height = LevelCursor::TreeHeight(store_.get(), root_);
  ASSERT_TRUE(height.ok());
  ASSERT_GE(*height, 2);
  LevelCursor cur(store_.get(), root_, /*level=*/1);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  int count = 0;
  while (cur.Valid()) {
    EXPECT_EQ(cur.item().payload.size(), Hash::kSize);
    // Each payload digest must resolve to a stored node.
    EXPECT_TRUE(store_->Contains(cur.item().PayloadHash()));
    ASSERT_TRUE(cur.Next().ok());
    ++count;
  }
  EXPECT_GT(count, 1);
}

TEST_F(CursorTest, LevelCursorChunkStartTracksNodeBoundaries) {
  LevelCursor cur(store_.get(), root_, 0);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  int boundaries = 0;
  while (cur.Valid()) {
    if (cur.AtChunkStart()) {
      ++boundaries;
      EXPECT_EQ(cur.CurrentChunkFirstKey(), cur.item().key);
    }
    ASSERT_TRUE(cur.Next().ok());
  }
  // One boundary per leaf; a 1000-record tree has many leaves.
  EXPECT_GT(boundaries, 5);
}

TEST_F(CursorTest, SeekToChunkStartCoversKey) {
  LevelCursor cur(store_.get(), root_, 0);
  ASSERT_TRUE(cur.SeekToChunkStart(TKey(500)).ok());
  ASSERT_TRUE(cur.Valid());
  EXPECT_TRUE(cur.AtChunkStart());
  EXPECT_LE(cur.CurrentChunkFirstKey(), TKey(500));
  // Walking forward within the chunk must reach the key.
  bool found = false;
  while (cur.Valid()) {
    if (cur.item().key == TKey(500)) {
      found = true;
      break;
    }
    ASSERT_TRUE(cur.Next().ok());
  }
  EXPECT_TRUE(found);
}

TEST_F(CursorTest, TreeHeightOfEmptyAndLeafTrees) {
  auto empty = LevelCursor::TreeHeight(store_.get(), Hash::Zero());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0);

  PosTree small_tree(store_);
  auto small_root = small_tree.Put(Hash::Zero(), "k", "v");
  ASSERT_TRUE(small_root.ok());
  auto h = LevelCursor::TreeHeight(store_.get(), *small_root);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, 1);
}

}  // namespace
}  // namespace siri
