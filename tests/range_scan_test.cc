// Copyright (c) 2026 The siri Authors. MIT license.
//
// RangeScan across all structures: ordered trees use cursor seeks, the
// others fall back to filtered scans; results must be identical.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class RangeScanTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = MakeIndex(GetParam(), store_);
    auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(1000));
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  std::vector<KV> Collect(Slice lo, Slice hi) {
    std::vector<KV> out;
    Status s = index_->RangeScan(root_, lo, hi, [&](Slice k, Slice v) {
      out.push_back(KV{k.ToString(), v.ToString()});
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<ImmutableIndex> index_;
  Hash root_;
};

TEST_P(RangeScanTest, MiddleRangeExactAndOrdered) {
  auto hits = Collect(TKey(100), TKey(200));
  ASSERT_EQ(hits.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i].key, TKey(100 + i));
    EXPECT_EQ(hits[i].value, TVal(100 + i));
  }
}

TEST_P(RangeScanTest, BoundsAreHalfOpen) {
  auto hits = Collect(TKey(5), TKey(6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, TKey(5));
}

TEST_P(RangeScanTest, EmptyRangeYieldsNothing) {
  EXPECT_TRUE(Collect(TKey(7), TKey(7)).empty());
  EXPECT_TRUE(Collect("zzz", "zzzz").empty());
}

TEST_P(RangeScanTest, FullRangeMatchesScan) {
  auto hits = Collect("", "~");  // '~' > every generated key
  EXPECT_EQ(hits.size(), 1000u);
}

TEST_P(RangeScanTest, RangeAcrossManyLeaves) {
  auto hits = Collect(TKey(0), TKey(999) + "\xff");
  EXPECT_EQ(hits.size(), 1000u);
}

TEST_P(RangeScanTest, OrderedTreesSeekInsteadOfScanning) {
  if (GetParam() == IndexKind::kMbt || GetParam() == IndexKind::kMpt) {
    GTEST_SKIP() << "fallback implementations scan";
  }
  // Bigger tree so "whole tree" and "one seek path" are far apart.
  auto big = index_->PutBatch(index_->EmptyRoot(), MakeKvs(20000));
  ASSERT_TRUE(big.ok());
  PageSet pages;
  ASSERT_TRUE(index_->CollectPages(*big, &pages).ok());

  store_->ResetOpCounters();
  std::vector<KV> hits;
  ASSERT_TRUE(index_->RangeScan(*big, TKey(10000), TKey(10010),
                                [&](Slice k, Slice v) {
                                  hits.push_back(KV{k.ToString(), v.ToString()});
                                })
                  .ok());
  const uint64_t gets = store_->stats().gets;
  EXPECT_EQ(hits.size(), 10u);
  // A short range visits one root-to-leaf path plus a few leaves, not the
  // whole tree.
  EXPECT_LT(gets, 30u);
  EXPECT_LT(gets, pages.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, RangeScanTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

}  // namespace
}  // namespace siri
