// Copyright (c) 2026 The siri Authors. MIT license.
//
// POS-Tree specifics: content-defined chunking, incremental update
// equivalence with full rebuilds, bottom-up batch build, Prolly mode, the
// §5.5 ablation knobs, and chunker unit behavior.

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/sha256.h"
#include "index/ordered/tree_cursor.h"
#include "index/pos/chunker.h"
#include "index/pos/pos_tree.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

// --- Chunker units ---

TEST(ChunkerTest, FixedFanoutCutsEveryN) {
  FixedFanoutChunker c(3);
  int cuts = 0;
  for (int i = 0; i < 9; ++i) {
    if (c.Feed("item", nullptr)) {
      ++cuts;
      c.Reset();
    }
  }
  EXPECT_EQ(cuts, 3);
}

TEST(ChunkerTest, HashPatternRespectsMinItems) {
  HashPatternChunker c(/*pattern_bits=*/1, /*min_items=*/2);
  // Find a digest matching a 1-bit pattern (low bit set).
  Hash match;
  for (int i = 0;; ++i) {
    match = Sha256::Digest("probe" + std::to_string(i));
    if ((match.Prefix64() & 1) == 1) break;
  }
  c.Reset();
  EXPECT_FALSE(c.Feed("x", &match));  // first item: min_items suppresses
  EXPECT_TRUE(c.Feed("x", &match));   // second item: pattern fires
}

TEST(ChunkerTest, ContentDefinedDeterministicPerContent) {
  ContentDefinedChunker a(16, 6), b(16, 6);
  Rng rng(1);
  const std::string blob = rng.Bytes(4096);
  std::vector<int> cuts_a, cuts_b;
  for (int i = 0; i < 64; ++i) {
    Slice item(blob.data() + i * 64, 64);
    if (a.Feed(item, nullptr)) {
      cuts_a.push_back(i);
      a.Reset();
    }
    if (b.Feed(item, nullptr)) {
      cuts_b.push_back(i);
      b.Reset();
    }
  }
  EXPECT_EQ(cuts_a, cuts_b);
  EXPECT_GT(cuts_a.size(), 0u);
}

TEST(ChunkerTest, MaxChunkBytesForcesBoundary) {
  // Unmatchable pattern: only the size cap can cut.
  ContentDefinedChunker c(16, 48, /*max_chunk_bytes=*/100);
  int cuts = 0;
  for (int i = 0; i < 10; ++i) {
    if (c.Feed(std::string(60, 'x'), nullptr)) {
      ++cuts;
      c.Reset();
    }
  }
  EXPECT_EQ(cuts, 5);  // every 2 items = 120 bytes >= 100
}

TEST(ChunkerTest, CloneIsIndependent) {
  ContentDefinedChunker c(16, 4);
  auto clone = c.Clone();
  Rng rng(2);
  const std::string item = rng.Bytes(64);
  (void)c.Feed(item, nullptr);
  // Clone hasn't seen anything; feeding the same item from scratch must
  // behave like a fresh chunker (deterministic).
  ContentDefinedChunker fresh(16, 4);
  EXPECT_EQ(clone->Feed(item, nullptr), fresh.Feed(item, nullptr));
}

// --- Tree behavior ---

class PosTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    tree_ = std::make_unique<PosTree>(store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<PosTree> tree_;
};

TEST_F(PosTreeTest, IncrementalUpdateEqualsFullRebuild) {
  // The heart of structural invariance: applying edits incrementally must
  // produce the identical root digest as rebuilding from the final record
  // set — across single edits, batches, inserts, and deletes.
  auto kvs = MakeKvs(3000);
  auto root = tree_->BuildFromSorted(kvs);
  ASSERT_TRUE(root.ok());

  Rng rng(11);
  std::map<std::string, std::string> model;
  for (const auto& kv : kvs) model[kv.key] = kv.value;

  Hash cur = *root;
  for (int round = 0; round < 10; ++round) {
    std::vector<KV> puts;
    std::vector<std::string> dels;
    for (int i = 0; i < 50; ++i) {
      const int k = static_cast<int>(rng.Uniform(4000));
      if (rng.Bernoulli(0.3)) {
        dels.push_back(TKey(k));
      } else {
        puts.push_back(KV{TKey(k), TVal(k, round + 1)});
      }
    }
    auto r1 = tree_->PutBatch(cur, puts);
    ASSERT_TRUE(r1.ok());
    for (const auto& kv : puts) model[kv.key] = kv.value;
    auto r2 = tree_->DeleteBatch(*r1, dels);
    ASSERT_TRUE(r2.ok());
    for (const auto& k : dels) model.erase(k);
    cur = *r2;

    // Full rebuild from the model must land on the same digest.
    std::vector<KV> as_kv;
    as_kv.reserve(model.size());
    for (const auto& [k, v] : model) as_kv.push_back(KV{k, v});
    auto rebuilt = tree_->BuildFromSorted(as_kv);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(cur, *rebuilt) << "round " << round;
  }
}

TEST_F(PosTreeTest, UpdateTouchesFewPages) {
  auto root = tree_->BuildFromSorted(MakeKvs(20000));
  ASSERT_TRUE(root.ok());
  store_->ResetOpCounters();
  auto updated = tree_->Put(*root, TKey(10000), "new-value");
  ASSERT_TRUE(updated.ok());
  // O(log N) path rewrite plus resync: far fewer page writes than pages.
  EXPECT_LT(store_->stats().puts, 60u);
}

TEST_F(PosTreeTest, BuildFromSortedMatchesIncrementalBuild) {
  auto kvs = MakeKvs(2500);
  auto bulk = tree_->BuildFromSorted(kvs);
  ASSERT_TRUE(bulk.ok());
  Hash cur = Hash::Zero();
  for (size_t i = 0; i < kvs.size(); i += 100) {
    std::vector<KV> batch(kvs.begin() + i,
                          kvs.begin() + std::min(i + 100, kvs.size()));
    auto next = tree_->PutBatch(cur, batch);
    ASSERT_TRUE(next.ok());
    cur = *next;
  }
  EXPECT_EQ(cur, *bulk);
}

TEST_F(PosTreeTest, BuildFromSortedRejectsUnsorted) {
  std::vector<KV> bad = {{"b", "1"}, {"a", "2"}};
  EXPECT_FALSE(tree_->BuildFromSorted(bad).ok());
  std::vector<KV> dup = {{"a", "1"}, {"a", "2"}};
  EXPECT_FALSE(tree_->BuildFromSorted(dup).ok());
}

TEST_F(PosTreeTest, LeafSizesFollowPattern) {
  auto root = tree_->BuildFromSorted(MakeKvs(5000));
  ASSERT_TRUE(root.ok());
  // Mean leaf size should be near 2^leaf_pattern_bits = 1024 bytes.
  LevelCursor cur(store_.get(), *root, 0);
  ASSERT_TRUE(cur.SeekToFirst().ok());
  uint64_t leaves = 0;
  while (cur.Valid()) {
    if (cur.AtChunkStart()) {
      ++leaves;
    }
    ASSERT_TRUE(cur.Next().ok());
  }
  PageSet pages;
  ASSERT_TRUE(tree_->CollectPages(*root, &pages).ok());
  ASSERT_GT(leaves, 0u);
  const double avg_total = static_cast<double>(store_->BytesOf(pages)) / leaves;
  // Total bytes / leaf count overshoots leaf size by internal overhead; the
  // bound is loose but catches pathological chunking.
  EXPECT_GT(avg_total, 256);
  EXPECT_LT(avg_total, 8192);
}

TEST_F(PosTreeTest, ProllyModeDiffersButStoresSameContent) {
  PosTree prolly(store_, PosTreeOptions::Prolly());
  auto kvs = MakeKvs(1500);
  auto pos_root = tree_->BuildFromSorted(kvs);
  auto prolly_root = prolly.BuildFromSorted(kvs);
  ASSERT_TRUE(pos_root.ok());
  ASSERT_TRUE(prolly_root.ok());
  EXPECT_NE(*pos_root, *prolly_root);  // different chunking
  EXPECT_EQ(Dump(prolly, *prolly_root), Dump(*tree_, *pos_root));
}

TEST_F(PosTreeTest, ProllyModeIsAlsoStructurallyInvariant) {
  PosTree prolly(store_, PosTreeOptions::Prolly());
  auto kvs = MakeKvs(800);
  auto direct = prolly.BuildFromSorted(kvs);
  ASSERT_TRUE(direct.ok());
  std::vector<KV> reversed(kvs.rbegin(), kvs.rend());
  auto incremental = prolly.PutBatch(Hash::Zero(), reversed);
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(*direct, *incremental);
}

TEST_F(PosTreeTest, NonSiAblationDependsOnHistory) {
  // §5.5.1: with pattern-driven splitting disabled (fixed-size chunking),
  // the structure depends on the order of operations: inserting records
  // into the middle shifts every following fixed boundary, whereas a
  // direct build cuts from byte zero. Variable-length values matter here —
  // with perfectly uniform entries even fixed-size chunking happens to be
  // history-independent.
  PosTree non_si(store_, PosTreeOptions::NonStructurallyInvariant());
  std::vector<KV> kvs;
  for (int i = 0; i < 800; ++i) {
    kvs.push_back(KV{TKey(i), std::string(20 + (i * 37) % 200, 'x')});
  }
  auto direct = non_si.PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(direct.ok());

  // Two-step: build everything except a middle run, then insert the middle.
  std::vector<KV> without_mid, mid;
  for (int i = 0; i < 800; ++i) {
    ((i >= 400 && i < 430) ? mid : without_mid).push_back(kvs[i]);
  }
  auto r1 = non_si.PutBatch(Hash::Zero(), without_mid);
  ASSERT_TRUE(r1.ok());
  auto r2 = non_si.PutBatch(*r1, mid);
  ASSERT_TRUE(r2.ok());

  EXPECT_NE(*direct, *r2);  // order-dependent shape
  EXPECT_EQ(Dump(non_si, *direct), Dump(non_si, *r2));  // same content
}

TEST_F(PosTreeTest, NonRiAblationSharesNothing) {
  // §5.5.2: every version's pages are distinct; intersection is empty.
  PosTree non_ri(store_, PosTreeOptions::NonRecursivelyIdentical());
  auto r1 = non_ri.PutBatch(Hash::Zero(), MakeKvs(500));
  ASSERT_TRUE(r1.ok());
  auto r2 = non_ri.Put(*r1, TKey(100), "changed");
  ASSERT_TRUE(r2.ok());
  PageSet p1, p2;
  ASSERT_TRUE(non_ri.CollectPages(*r1, &p1).ok());
  ASSERT_TRUE(non_ri.CollectPages(*r2, &p2).ok());
  for (const Hash& h : p2) EXPECT_EQ(p1.count(h), 0u);
}

TEST_F(PosTreeTest, InsertNewMinimumKey) {
  auto root = tree_->BuildFromSorted(MakeKvs(1000));
  ASSERT_TRUE(root.ok());
  auto r2 = tree_->Put(*root, "aaa-new-min", "v");
  ASSERT_TRUE(r2.ok());
  auto got = tree_->Get(*r2, "aaa-new-min", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->has_value());
  // Equivalent full rebuild agrees (invariance at the left edge).
  auto kvs = MakeKvs(1000);
  kvs.insert(kvs.begin(), KV{"aaa-new-min", "v"});
  auto rebuilt = tree_->BuildFromSorted(kvs);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*r2, *rebuilt);
}

TEST_F(PosTreeTest, InsertBeyondMaximumKey) {
  auto root = tree_->BuildFromSorted(MakeKvs(1000));
  ASSERT_TRUE(root.ok());
  auto r2 = tree_->Put(*root, "zzz-new-max", "v");
  ASSERT_TRUE(r2.ok());
  auto kvs = MakeKvs(1000);
  kvs.push_back(KV{"zzz-new-max", "v"});
  auto rebuilt = tree_->BuildFromSorted(kvs);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*r2, *rebuilt);
}

TEST_F(PosTreeTest, ShrinkToSingleRecordAndBack) {
  auto root = tree_->BuildFromSorted(MakeKvs(500));
  ASSERT_TRUE(root.ok());
  std::vector<std::string> dels;
  for (int i = 1; i < 500; ++i) dels.push_back(TKey(i));
  auto shrunk = tree_->DeleteBatch(*root, dels);
  ASSERT_TRUE(shrunk.ok());
  EXPECT_EQ(Dump(*tree_, *shrunk).size(), 1u);
  // Canonical single-record tree.
  auto tiny = tree_->BuildFromSorted({KV{TKey(0), TVal(0)}});
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(*shrunk, *tiny);
}

TEST_F(PosTreeTest, LargeValuesSpanChunks) {
  std::vector<KV> kvs;
  for (int i = 0; i < 20; ++i) {
    kvs.push_back(KV{TKey(i), std::string(5000 + i, 'v')});  // > chunk target
  }
  auto root = tree_->PutBatch(Hash::Zero(), kvs);
  ASSERT_TRUE(root.ok());
  for (const auto& kv : kvs) {
    auto got = tree_->Get(*root, kv.key, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(got->value().size(), kv.value.size());
  }
}

}  // namespace
}  // namespace siri
