// Copyright (c) 2026 The siri Authors. MIT license.
//
// Wire protocol and client/server boundary: codec round-trips, frame
// decoder hardening against malformed input (truncated, oversized,
// bit-flipped, garbled — the server must never crash on a hostile or
// broken peer), and the SiriServer + SocketTransport loopback path
// end-to-end against a real ForkbaseServlet.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/varint.h"
#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using net::FrameDecoder;
using net::MsgType;
using net::Request;
using testing_util::MakeKvs;

// --- request codec round-trips ---------------------------------------

Request RoundTrip(const Request& in) {
  const std::string payload = net::EncodeRequest(in);
  Request out;
  EXPECT_TRUE(net::DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.type, in.type);
  return out;
}

TEST(WireCodecTest, HelloRoundTrips) {
  Request in;
  in.type = MsgType::kHello;
  in.version = 7;
  EXPECT_EQ(RoundTrip(in).version, 7u);
}

TEST(WireCodecTest, HashRequestsRoundTrip) {
  for (MsgType t : {MsgType::kGet, MsgType::kContains, MsgType::kSizeOf}) {
    Request in;
    in.type = t;
    in.hash = Sha256::Digest("node");
    EXPECT_EQ(RoundTrip(in).hash, in.hash);
  }
}

TEST(WireCodecTest, PutRoundTripsArbitraryBytes) {
  Request in;
  in.type = MsgType::kPut;
  in.bytes = std::string("\x00\xff payload \x01", 12);
  EXPECT_EQ(RoundTrip(in).bytes, in.bytes);
}

TEST(WireCodecTest, PutManyRoundTripsBatch) {
  Request in;
  in.type = MsgType::kPutMany;
  for (int i = 0; i < 5; ++i) {
    auto bytes = std::make_shared<const std::string>(
        std::string(100 + i, static_cast<char>('a' + i)));
    in.batch.push_back({Sha256::Digest(*bytes), bytes});
  }
  Request out = RoundTrip(in);
  ASSERT_EQ(out.batch.size(), in.batch.size());
  for (size_t i = 0; i < in.batch.size(); ++i) {
    EXPECT_EQ(out.batch[i].hash, in.batch[i].hash);
    EXPECT_EQ(*out.batch[i].bytes, *in.batch[i].bytes);
  }
}

TEST(WireCodecTest, PublishRoundTripsWithAndWithoutExpectedHead) {
  Request in;
  in.type = MsgType::kPublish;
  in.structure = "pos";
  in.branch = "feature/x";
  in.new_root = Sha256::Digest("root");
  in.author = "alice";
  in.message = "commit message with spaces";
  Request out = RoundTrip(in);
  EXPECT_EQ(out.structure, "pos");
  EXPECT_EQ(out.branch, "feature/x");
  EXPECT_EQ(out.new_root, in.new_root);
  EXPECT_EQ(out.author, "alice");
  EXPECT_EQ(out.message, in.message);
  EXPECT_FALSE(out.expected_head.has_value());

  in.expected_head = Sha256::Digest("head");
  out = RoundTrip(in);
  ASSERT_TRUE(out.expected_head.has_value());
  EXPECT_EQ(*out.expected_head, *in.expected_head);
}

TEST(WireCodecTest, EmptyBodyRequestsRoundTrip) {
  for (MsgType t : {MsgType::kFlush, MsgType::kStoreStats,
                    MsgType::kResetCounters, MsgType::kListBranches}) {
    Request in;
    in.type = t;
    RoundTrip(in);
  }
}

TEST(WireCodecTest, DecodeRejectsUnknownTypeAndTrailingGarbage) {
  Request out;
  std::string unknown(1, static_cast<char>(200));
  EXPECT_TRUE(net::DecodeRequest(unknown, &out).IsCorruption());

  Request valid;
  valid.type = MsgType::kFlush;
  std::string trailing = net::EncodeRequest(valid) + "x";
  EXPECT_TRUE(net::DecodeRequest(trailing, &out).IsCorruption());

  EXPECT_TRUE(net::DecodeRequest(Slice(), &out).IsCorruption());
}

TEST(WireCodecTest, PutManyRejectsCountBeyondPayload) {
  // A count claiming more records than the payload could hold must be
  // rejected up front, not drive a giant reserve or a long decode loop.
  std::string payload(1, static_cast<char>(MsgType::kPutMany));
  PutVarint64(&payload, 1u << 30);
  Request out;
  EXPECT_TRUE(net::DecodeRequest(payload, &out).IsCorruption());
}

TEST(WireCodecTest, ResponseRoundTripsStatusAndBody) {
  const std::string payload =
      net::EncodeResponse(Status::OK(), Slice("result-bytes"));
  Status app;
  std::string body;
  ASSERT_TRUE(net::DecodeResponse(payload, &app, &body).ok());
  EXPECT_TRUE(app.ok());
  EXPECT_EQ(body, "result-bytes");

  const std::string err =
      net::EncodeResponse(Status::NotFound("no such node"), Slice());
  ASSERT_TRUE(net::DecodeResponse(err, &app, &body).ok());
  EXPECT_TRUE(app.IsNotFound());
  EXPECT_NE(app.ToString().find("no such node"), std::string::npos);
  EXPECT_TRUE(body.empty());
}

TEST(WireCodecTest, EveryStatusCodeSurvivesTheWire) {
  const std::vector<Status> all = {
      Status::OK(),
      Status::NotFound("a"),
      Status::Corruption("b"),
      Status::InvalidArgument("c"),
      Status::Conflict("d"),
      Status::NotSupported("e"),
      Status::IOError("f"),
      Status::ResourceExhausted("g"),
      Status::Unavailable("h"),
  };
  for (const Status& s : all) {
    const std::string payload = net::EncodeResponse(s, Slice());
    Status app;
    std::string body;
    ASSERT_TRUE(net::DecodeResponse(payload, &app, &body).ok());
    EXPECT_EQ(app.ok(), s.ok());
    EXPECT_EQ(app.IsNotFound(), s.IsNotFound());
    EXPECT_EQ(app.IsCorruption(), s.IsCorruption());
    EXPECT_EQ(app.IsConflict(), s.IsConflict());
    EXPECT_EQ(app.IsResourceExhausted(), s.IsResourceExhausted());
    EXPECT_EQ(app.IsUnavailable(), s.IsUnavailable());
  }
}

TEST(WireCodecTest, BadFrameRejectIsDistinguishable) {
  // The "bad frame: " marker is the replay-safety contract: only a
  // frame-layer reject (request never executed) carries it.
  EXPECT_TRUE(net::IsBadFrameReject(
      Status::Corruption(std::string(net::kBadFramePrefix) +
                         "frame digest mismatch")));
  EXPECT_FALSE(net::IsBadFrameReject(Status::Corruption("page log torn")));
  EXPECT_FALSE(net::IsBadFrameReject(
      Status::IOError(std::string(net::kBadFramePrefix) + "x")));
  EXPECT_FALSE(net::IsBadFrameReject(Status::OK()));
}

TEST(WireCodecTest, ResultBodiesRoundTrip) {
  net::WirePublishResult pub;
  pub.head = Sha256::Digest("head");
  pub.commit = Sha256::Digest("commit");
  pub.cas_failures = 3;
  pub.merge_commits = 2;
  net::WirePublishResult pub2;
  ASSERT_TRUE(
      net::DecodePublishResultBody(net::EncodePublishResultBody(pub), &pub2)
          .ok());
  EXPECT_EQ(pub2.head, pub.head);
  EXPECT_EQ(pub2.commit, pub.commit);
  EXPECT_EQ(pub2.cas_failures, 3u);
  EXPECT_EQ(pub2.merge_commits, 2u);

  BranchStats bs;
  bs.commits = 10;
  bs.cas_failures = 4;
  bs.merge_retries = 2;
  bs.combined_commits = 6;
  BranchStats bs2;
  ASSERT_TRUE(
      net::DecodeBranchStatsBody(net::EncodeBranchStatsBody(bs), &bs2).ok());
  EXPECT_EQ(bs2.commits, 10u);
  EXPECT_EQ(bs2.combined_commits, 6u);

  NodeStore::Stats ss;
  ss.puts = 1;
  ss.put_bytes = 2;
  ss.dup_puts = 3;
  ss.gets = 4;
  ss.get_bytes = 5;
  ss.unique_nodes = 6;
  ss.unique_bytes = 7;
  ss.flushes = 8;
  NodeStore::Stats ss2;
  ASSERT_TRUE(
      net::DecodeStoreStatsBody(net::EncodeStoreStatsBody(ss), &ss2).ok());
  EXPECT_EQ(ss2.puts, 1u);
  EXPECT_EQ(ss2.flushes, 8u);
  EXPECT_EQ(ss2.unique_bytes, 7u);

  const std::vector<std::string> branches = {"main", "", "feature/long-name"};
  std::vector<std::string> branches2;
  ASSERT_TRUE(
      net::DecodeStringListBody(net::EncodeStringListBody(branches), &branches2)
          .ok());
  EXPECT_EQ(branches2, branches);
}

// --- wire v2: correlation ids, want_push, pushed batches ---------------

TEST(WireCodecTest, CorrelationIdRoundTripsUnderV2AndIsAbsentUnderV1) {
  Request req;
  req.type = MsgType::kGet;
  req.hash = Sha256::Digest("corr");
  req.corr_id = 0x1234567u;

  Request v2;
  ASSERT_TRUE(net::DecodeRequest(net::EncodeRequest(req, 2), &v2, 2).ok());
  EXPECT_EQ(v2.corr_id, 0x1234567u);
  EXPECT_EQ(v2.hash, req.hash);

  // The v1 dialect has no corr-id slot: it is not encoded, and a v1
  // decode of a v1 frame yields 0.
  Request v1;
  ASSERT_TRUE(net::DecodeRequest(net::EncodeRequest(req, 1), &v1, 1).ok());
  EXPECT_EQ(v1.corr_id, 0u);
  EXPECT_EQ(v1.hash, req.hash);
}

TEST(WireCodecTest, ResponseCorrelationIdRoundTripsUnderV2) {
  const std::string v2 =
      net::EncodeResponse(Status::OK(), Slice("pipelined"), 2, 0x42u);
  Status app;
  std::string body;
  uint64_t corr = 0;
  ASSERT_TRUE(net::DecodeResponse(v2, &app, &body, 2, &corr).ok());
  EXPECT_TRUE(app.ok());
  EXPECT_EQ(body, "pipelined");
  EXPECT_EQ(corr, 0x42u);

  // v1 responses carry no id; the out-param reports 0.
  const std::string v1 = net::EncodeResponse(Status::OK(), Slice("solo"), 1);
  corr = 99;
  ASSERT_TRUE(net::DecodeResponse(v1, &app, &body, 1, &corr).ok());
  EXPECT_EQ(body, "solo");
  EXPECT_EQ(corr, 0u);
}

TEST(WireCodecTest, HelloIsAlwaysV1ShapedRegardlessOfRequestedVersion) {
  // The Hello precedes negotiation, so its encoding must not depend on
  // the version being negotiated — both dialects produce identical bytes.
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = net::kWireVersion;
  hello.corr_id = 7;  // must be ignored: Hello has no corr slot
  EXPECT_EQ(net::EncodeRequest(hello, 2), net::EncodeRequest(hello, 1));
}

TEST(WireCodecTest, WantPushRoundTripsUnderV2Only) {
  Request pub;
  pub.type = MsgType::kPublish;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = Sha256::Digest("root");
  pub.author = "a";
  pub.message = "m";
  pub.want_push = true;

  Request v2;
  ASSERT_TRUE(net::DecodeRequest(net::EncodeRequest(pub, 2), &v2, 2).ok());
  EXPECT_TRUE(v2.want_push);

  Request v1;
  ASSERT_TRUE(net::DecodeRequest(net::EncodeRequest(pub, 1), &v1, 1).ok());
  EXPECT_FALSE(v1.want_push);  // the v1 dialect cannot ask for a push
}

TEST(WireCodecTest, PublishResultPushedBatchRoundTripsUnderV2) {
  net::WirePublishResult pub;
  pub.head = Sha256::Digest("head");
  pub.commit = Sha256::Digest("commit");
  auto page = std::make_shared<const std::string>(std::string(256, 'p'));
  auto node = std::make_shared<const std::string>("commit-object-bytes");
  pub.pushed.push_back({Sha256::Digest(*page), page});
  pub.pushed.push_back({Sha256::Digest(*node), node});

  net::WirePublishResult v2;
  ASSERT_TRUE(
      net::DecodePublishResultBody(net::EncodePublishResultBody(pub, 2), &v2, 2)
          .ok());
  ASSERT_EQ(v2.pushed.size(), 2u);
  EXPECT_EQ(v2.pushed[0].hash, pub.pushed[0].hash);
  EXPECT_EQ(*v2.pushed[0].bytes, *page);
  EXPECT_EQ(*v2.pushed[1].bytes, *node);

  // Encoded for a v1 peer, the push is silently dropped — the ack stays
  // exactly the legacy shape.
  net::WirePublishResult v1;
  ASSERT_TRUE(
      net::DecodePublishResultBody(net::EncodePublishResultBody(pub, 1), &v1, 1)
          .ok());
  EXPECT_TRUE(v1.pushed.empty());
  EXPECT_EQ(v1.head, pub.head);
}

// --- frame decoder hardening ------------------------------------------

TEST(FrameDecoderTest, ExtractsFrameDeliveredByteByByte) {
  const std::string payload = "hello frame";
  const std::string frame = net::EncodeFrame(payload);
  FrameDecoder dec;
  std::string out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Append(&frame[i], 1);
    auto r = dec.Next(&out);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r) << "complete frame before the last byte arrived";
  }
  dec.Append(&frame[frame.size() - 1], 1);
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, ExtractsBackToBackFrames) {
  FrameDecoder dec;
  std::string stream;
  for (int i = 0; i < 10; ++i) {
    stream += net::EncodeFrame("payload-" + std::to_string(i));
  }
  dec.Append(stream.data(), stream.size());
  std::string out;
  for (int i = 0; i < 10; ++i) {
    auto r = dec.Next(&out);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(*r);
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(FrameDecoderTest, TruncatedFrameIsNeedMoreNotError) {
  const std::string frame = net::EncodeFrame(std::string(1000, 'x'));
  FrameDecoder dec;
  dec.Append(frame.data(), frame.size() / 2);
  std::string out;
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // a torn frame is a hung-up peer, not corruption
}

TEST(FrameDecoderTest, OversizedLengthIsCorruption) {
  FrameDecoder dec(/*max_frame_bytes=*/1024);
  std::string frame;
  PutVarint64(&frame, 1 << 20);  // claims 1 MB against a 1 KB bound
  frame.append(32, '\0');
  dec.Append(frame.data(), frame.size());
  std::string out;
  auto r = dec.Next(&out);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FrameDecoderTest, PayloadAtExactCapDecodes) {
  // The cap bounds the *payload* length, inclusively: a payload of
  // exactly max_frame_bytes is legal and must decode. (Off-by-one here
  // would make the largest advertised frame size unusable.)
  constexpr uint64_t kCap = 4096;
  const std::string payload(kCap, 'm');
  const std::string frame = net::EncodeFrame(payload);
  FrameDecoder dec(/*max_frame_bytes=*/kCap);
  dec.Append(frame.data(), frame.size());
  std::string out;
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(*r);
  EXPECT_EQ(out, payload);
}

TEST(FrameDecoderTest, PayloadOneOverCapIsTypedCorruptionNotNeedMore) {
  // One byte past the cap must be a typed Corruption the moment the
  // length varint is readable — not "need more bytes", which would leave
  // the reader waiting for a frame it will never accept. Only the length
  // prefix is appended here to pin exactly that: classification must not
  // require the (oversized) body to arrive.
  constexpr uint64_t kCap = 4096;
  std::string prefix;
  PutVarint64(&prefix, kCap + 1);
  FrameDecoder dec(/*max_frame_bytes=*/kCap);
  dec.Append(prefix.data(), prefix.size());
  std::string out;
  auto r = dec.Next(&out);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("oversized frame"), std::string::npos);
}

TEST(FrameDecoderTest, MalformedLengthVarintIsCorruption) {
  // Ten continuation bytes: no valid varint64 is that long, and more
  // input can never fix it — must be typed corruption, not need-more.
  FrameDecoder dec;
  const std::string evil(10, '\xff');
  dec.Append(evil.data(), evil.size());
  std::string out;
  auto r = dec.Next(&out);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FrameDecoderTest, BitFlipAnywhereIsCorruptionNeverWrongPayload) {
  const std::string payload = "sensitive payload bytes";
  const std::string frame = net::EncodeFrame(payload);
  for (size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string flipped = frame;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      FrameDecoder dec(/*max_frame_bytes=*/1 << 16);
      dec.Append(flipped.data(), flipped.size());
      std::string out;
      auto r = dec.Next(&out);
      // A flipped bit may make the frame corrupt (length/digest damage)
      // or incomplete (length now claims more bytes). What it must NEVER
      // do is deliver a payload different from what was framed.
      if (r.ok() && *r) {
        EXPECT_EQ(out, payload)
            << "bit flip at byte " << i << " delivered a wrong payload";
      }
    }
  }
}

TEST(FrameDecoderTest, FuzzedGarbageNeverCrashesAndNeverDeliversJunk) {
  // Deterministic xorshift fuzz: random mutations of valid frames plus
  // pure-garbage streams, delivered in random chunk sizes. The decoder
  // must never crash, never loop forever, and never hand back a payload
  // that was not framed intact.
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 300; ++round) {
    std::string stream;
    const int pieces = 1 + next_rand() % 4;
    std::vector<std::string> intact;
    for (int p = 0; p < pieces; ++p) {
      std::string payload(next_rand() % 200, ' ');
      for (char& c : payload) c = static_cast<char>(next_rand());
      std::string frame = net::EncodeFrame(payload);
      const bool mutate = next_rand() % 2 == 0;
      if (mutate) {
        const int flips = 1 + next_rand() % 4;
        for (int f = 0; f < flips; ++f) {
          frame[next_rand() % frame.size()] ^=
              static_cast<char>(1 << (next_rand() % 8));
        }
      } else {
        intact.push_back(payload);
      }
      stream += frame;
    }
    FrameDecoder dec(/*max_frame_bytes=*/1 << 16);
    size_t fed = 0;
    size_t delivered = 0;
    bool dead = false;
    while (fed < stream.size() && !dead) {
      const size_t chunk =
          std::min(stream.size() - fed, 1 + next_rand() % 97);
      dec.Append(stream.data() + fed, chunk);
      fed += chunk;
      for (;;) {
        std::string out;
        auto r = dec.Next(&out);
        if (!r.ok()) {
          dead = true;  // real connection would drop here
          break;
        }
        if (!*r) break;
        // Everything delivered before the first mutation point must be an
        // intact payload, verbatim.
        if (delivered < intact.size()) {
          EXPECT_EQ(out, intact[delivered]);
        }
        ++delivered;
      }
    }
  }
}

// --- loopback server + socket transport -------------------------------

class LoopbackServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    servlet_ = std::make_unique<ForkbaseServlet>(store_);
    servlet_->RegisterIndex(std::make_unique<PosTree>(store_));
    net::ServerOptions opts;
    opts.worker_threads = 2;
    opts.group_flush_window_micros = 0;  // in-memory store: no-op anyway
    server_ = std::make_unique<net::SiriServer>(servlet_.get(), opts);
    ASSERT_TRUE(server_->Listen(0).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::shared_ptr<net::SocketTransport> Connect() {
    std::shared_ptr<net::SocketTransport> t;
    Status s = net::SocketTransport::Connect("127.0.0.1", server_->port(), &t);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return t;
  }

  NodeStorePtr store_;
  std::unique_ptr<ForkbaseServlet> servlet_;
  std::unique_ptr<net::SiriServer> server_;
};

TEST_F(LoopbackServerTest, NodeOpsRoundTrip) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);

  const std::string payload(500, 'n');
  auto put = t->Put(payload);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(*put, Sha256::Digest(payload));

  auto got = t->Get(*put);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, payload);

  auto contains = t->Contains(*put);
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  auto absent = t->Contains(Sha256::Digest("never stored"));
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);

  auto size = t->SizeOf(*put);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());

  auto missing = t->Get(Sha256::Digest("never stored"));
  EXPECT_TRUE(missing.status().IsNotFound());

  EXPECT_TRUE(t->Flush().ok());

  auto stats = t->StoreStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->puts, 1u);
  EXPECT_GE(stats->gets, 1u);

  // Real measured traffic, not simulated RTTs.
  const auto ts = t->stats();
  EXPECT_GT(ts.rpcs, 0u);
  EXPECT_GT(ts.bytes_sent, payload.size());
  EXPECT_GT(ts.bytes_received, payload.size());
  EXPECT_GT(ts.syscalls, 0u);
}

TEST_F(LoopbackServerTest, PutManyStoresWholeBatch) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  NodeBatch batch;
  for (int i = 0; i < 20; ++i) {
    auto bytes = std::make_shared<const std::string>(
        "node-" + std::to_string(i) + std::string(200, 'b'));
    batch.push_back({Sha256::Digest(*bytes), bytes});
  }
  ASSERT_TRUE(t->PutMany(batch).ok());
  for (const auto& rec : batch) {
    EXPECT_TRUE(store_->Contains(rec.hash));
  }
}

TEST_F(LoopbackServerTest, PutManyRejectsDigestMismatch) {
  // A socket is a trust boundary: the server re-digests uploads and a
  // batch whose claimed hash does not match its bytes is rejected whole.
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  NodeBatch batch;
  auto good = std::make_shared<const std::string>(std::string(100, 'g'));
  auto evil = std::make_shared<const std::string>(std::string(100, 'e'));
  batch.push_back({Sha256::Digest(*good), good});
  batch.push_back({Sha256::Digest("some other bytes"), evil});
  const Status s = t->PutMany(batch);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The lying record was not stored under its claimed digest.
  EXPECT_FALSE(store_->Contains(Sha256::Digest("some other bytes")));
  // The connection survives an application-level rejection.
  EXPECT_TRUE(t->Flush().ok());
}

TEST_F(LoopbackServerTest, BranchOpsRoundTrip) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);

  auto missing = t->Head("main");
  EXPECT_TRUE(missing.status().IsNotFound());

  // Build a version server-side, then publish through the socket.
  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "tester";
  pub.message = "first";
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  auto head = t->Head("main");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, published->head);
  auto commit = servlet_->branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->root, *root);
  EXPECT_EQ(commit->author, "tester");

  auto bs = t->GetBranchStats("main");
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(bs->commits, 1u);

  auto branches = t->ListBranches();
  ASSERT_TRUE(branches.ok());
  ASSERT_EQ(branches->size(), 1u);
  EXPECT_EQ((*branches)[0], "main");

  // Unregistered structure: typed NotFound, not a dead connection.
  pub.structure = "mpt";
  auto unknown = t->Publish(pub);
  EXPECT_TRUE(unknown.status().IsNotFound());
  EXPECT_TRUE(t->Flush().ok());
}

TEST_F(LoopbackServerTest, GarbageConnectionDiesAloneServerSurvives) {
  auto healthy = Connect();
  ASSERT_NE(healthy, nullptr);

  // A raw socket spews garbage at the server.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string garbage(64, '\xff');
  ASSERT_EQ(send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  // The garbage connection is closed by the server (recv sees EOF).
  char buf[256];
  ssize_t n;
  for (;;) {
    n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // typed error response bytes, then close
  }
  EXPECT_EQ(n, 0);
  close(fd);

  // The healthy client is untouched, and the error was counted.
  auto put = healthy->Put(std::string(10, 'h'));
  EXPECT_TRUE(put.ok());
  EXPECT_GE(server_->stats().frame_errors, 1u);
  EXPECT_GE(server_->stats().connections, 2u);
}

namespace {

/// Hand-rolls one Hello advertising \p version against \p port and
/// returns the server's application verdict; on success, \p negotiated
/// receives the version the server answered with. The exchange is
/// v1-shaped on both legs, as every Hello is (it precedes negotiation).
Status HandRolledHello(int port, uint64_t version, uint64_t* negotiated) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::IOError("connect");
  }
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = static_cast<uint32_t>(version);
  const std::string frame =
      net::EncodeFrame(net::EncodeRequest(hello, /*wire_version=*/1));
  if (send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(frame.size())) {
    close(fd);
    return Status::IOError("send");
  }
  FrameDecoder dec;
  std::string payload;
  bool got_response = false;
  for (;;) {
    auto r = dec.Next(&payload);
    if (!r.ok()) break;
    if (*r) {
      got_response = true;
      break;
    }
    char buf[4096];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    dec.Append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (!got_response) return Status::IOError("no response");
  Status app;
  std::string body;
  const Status decoded =
      net::DecodeResponse(payload, &app, &body, /*wire_version=*/1);
  if (!decoded.ok()) return decoded;
  if (!app.ok()) return app;
  Slice in(body);
  if (!GetVarint64(&in, negotiated) || !in.empty()) {
    return Status::Corruption("hello body");
  }
  return Status::OK();
}

}  // namespace

TEST_F(LoopbackServerTest, HelloNegotiatesFutureAndCurrentVersionsDown) {
  // The negotiation matrix, server side. A future-version client is not
  // rejected: the server answers min(client, server) and the connection
  // proceeds at the version both speak.
  uint64_t negotiated = 0;
  ASSERT_TRUE(
      HandRolledHello(server_->port(), net::kWireVersion + 1, &negotiated)
          .ok());
  EXPECT_EQ(negotiated, net::kWireVersion);

  negotiated = 0;
  ASSERT_TRUE(
      HandRolledHello(server_->port(), net::kWireVersion, &negotiated).ok());
  EXPECT_EQ(negotiated, net::kWireVersion);

  // A legacy v1 client pins the connection at v1: the server must not
  // assume corr ids it would never receive.
  negotiated = 0;
  ASSERT_TRUE(
      HandRolledHello(server_->port(), net::kMinWireVersion, &negotiated)
          .ok());
  EXPECT_EQ(negotiated, net::kMinWireVersion);
}

TEST_F(LoopbackServerTest, VersionSkewBelowFloorFailsHandshakeTyped) {
  // Below the floor there is no common dialect: the Hello is rejected
  // with a typed InvalidArgument (and the connection survives the reject
  // — the peer may offer another version; HandRolledHello closes it).
  uint64_t negotiated = 0;
  const Status s = HandRolledHello(server_->port(), 0, &negotiated);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.ToString().find("wire version mismatch"), std::string::npos);
}

TEST_F(LoopbackServerTest, ClientStoreOverSocketReadsAndCommits) {
  // The full stack: ForkbaseClientStore on a SocketTransport, index reads
  // through the node cache, and a commit published over the wire.
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 16 << 20);

  PosTree server_index(store_);
  auto base = server_index.PutBatch(server_index.EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());

  PosTree client_index(client_store);
  auto got = client_index.Get(*base, testing_util::TKey(21), nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());

  auto root = client_index.PutBatch(*base, {{"socket/key", "socket/value"}});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(client_store->Flush().ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "socket-client";
  pub.message = "over the wire";
  auto published = client_store->transport()->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  // Server-side visibility of the client's commit.
  auto head = servlet_->branches()->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet_->branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  auto val = server_index.Get(commit->root, "socket/key", nullptr);
  ASSERT_TRUE(val.ok());
  ASSERT_TRUE(val->has_value());
  EXPECT_EQ(**val, "socket/value");
}

// --- pipelining --------------------------------------------------------

TEST_F(LoopbackServerTest, PipelinedThreadsShareOneConnectionWithoutCrosstalk) {
  // Many threads, ONE transport, max_inflight deep: every response must
  // come back to the thread whose correlation id it carries. Each key
  // stores distinct bytes, so any misrouted response would surface as a
  // wrong-value failure, not a flake.
  net::SocketTransport::Options opts;
  opts.max_inflight = 8;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(
      net::SocketTransport::Connect("127.0.0.1", server_->port(), &t, opts)
          .ok());
  EXPECT_EQ(t->negotiated_wire_version(), 2u);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::vector<std::vector<std::pair<Hash, std::string>>> stored(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    for (int j = 0; j < kOpsPerThread; ++j) {
      const std::string payload =
          "pipelined-" + std::to_string(i) + "-" + std::to_string(j) +
          std::string(64 + (i * kOpsPerThread + j) % 128, 'q');
      stored[i].push_back({Sha256::Digest(payload), payload});
    }
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (const auto& [hash, payload] : stored[i]) {
        auto put = t->Put(payload);
        if (!put.ok() || *put != hash) {
          failures.fetch_add(1);
          continue;
        }
        auto got = t->Get(hash);
        if (!got.ok() || **got != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const auto ts = t->stats();
  EXPECT_EQ(ts.retries, 0u);
  EXPECT_EQ(ts.reconnects, 0u);
  // 1 handshake + 2 RPCs per op, all down one connection.
  EXPECT_EQ(ts.rpcs, 1u + 2u * kThreads * kOpsPerThread);
  EXPECT_EQ(server_->stats().connections, 1u);
}

namespace {

/// A minimal v1-only peer: answers the Hello with version 1 (v1-shaped,
/// as every Hello exchange is), then serves kFlush requests in the v1
/// dialect until the client hangs up. Anything else gets a typed error.
void RunV1OnlyPeer(int listen_fd) {
  const int c = accept(listen_fd, nullptr, nullptr);
  if (c < 0) return;
  FrameDecoder dec;
  std::string payload;
  char buf[4096];
  for (;;) {
    auto next = dec.Next(&payload);
    if (!next.ok()) break;
    if (!*next) {
      const ssize_t n = recv(c, buf, sizeof(buf), 0);
      if (n <= 0) break;
      dec.Append(buf, static_cast<size_t>(n));
      continue;
    }
    Request req;
    if (!net::DecodeRequest(payload, &req, /*wire_version=*/1).ok()) break;
    Status app;
    std::string body;
    if (req.type == MsgType::kHello) {
      PutVarint64(&body, 1);  // a pre-v2 server knows only its own version
    } else if (req.type != MsgType::kFlush) {
      app = Status::NotSupported("v1 peer serves only Flush");
    }
    const std::string resp =
        net::EncodeFrame(net::EncodeResponse(app, body, /*wire_version=*/1));
    if (send(c, resp.data(), resp.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(resp.size())) {
      break;
    }
  }
  close(c);
}

}  // namespace

TEST(WireNegotiationTest, V1PeerDegradesConnectionToLegacyProtocol) {
  // New client, old server: the Hello negotiates the connection down to
  // v1 — no corr ids on the wire, effective inflight 1 — and RPCs still
  // work. This pins the old-server row of the negotiation matrix.
  int listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);
  std::thread peer([listen_fd] { RunV1OnlyPeer(listen_fd); });

  net::SocketTransport::Options opts;
  opts.max_inflight = 8;  // requested, but v1 must pin the effective depth
  opts.auto_reconnect = false;
  opts.retry.max_attempts = 1;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", port, &t, opts).ok());
  EXPECT_EQ(t->negotiated_wire_version(), 1u);
  EXPECT_TRUE(t->Flush().ok());
  EXPECT_TRUE(t->Flush().ok());
  t->Close();
  peer.join();
  close(listen_fd);
}

TEST(ServerFrameCapTest, RequestAtExactCapExecutesOneOverIsRejected) {
  // The decoder-boundary tests, replayed through the real server: a
  // request payload of exactly the server's max_frame_bytes executes; one
  // byte more draws the typed bad-frame reject (provably not executed)
  // and the connection drop.
  auto store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(store);
  net::ServerOptions sopts;
  sopts.worker_threads = 1;
  sopts.group_flush_window_micros = 0;
  sopts.max_frame_bytes = 8192;
  net::SiriServer server(&servlet, sopts);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());

  net::SocketTransport::Options copts;
  // The client's own frame cap must admit the response AND its request:
  // give it headroom so the server's bound is the one under test.
  copts.max_frame_bytes = 1 << 20;
  copts.auto_reconnect = false;
  copts.retry.max_attempts = 1;
  std::shared_ptr<net::SocketTransport> t;
  ASSERT_TRUE(
      net::SocketTransport::Connect("127.0.0.1", server.port(), &t, copts)
          .ok());

  // A kPut request payload is `type | corr varint | len varint | bytes`:
  // solve for the user bytes that land the payload exactly on the
  // server's cap. The first post-handshake RPC draws corr id 1 (a 1-byte
  // varint), and a ~8KB length is a 2-byte varint.
  const size_t overhead = 1 /*type*/ + 1 /*corr*/ + 2 /*len varint*/;
  const std::string at_cap(sopts.max_frame_bytes - overhead, 'z');
  auto put = t->Put(at_cap);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(*put, Sha256::Digest(at_cap));

  const std::string over_cap(sopts.max_frame_bytes - overhead + 1, 'z');
  auto rejected = t->Put(over_cap);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(server.stats().frame_errors, 1u);
  server.Stop();
}

// --- combiner-aware cache push -----------------------------------------

TEST_F(LoopbackServerTest, CachePushCutsLosingCommitterRoundTrips) {
  // Writer A lands a commit; writer B (push enabled) publishes against a
  // stale expectation and loses — the server merges, and the ack carries
  // the staged batch (merged pages + commit objects) back to B. B's next
  // reads of exactly those nodes must be cache hits, not Get RPCs.
  auto ta = Connect();
  ASSERT_NE(ta, nullptr);
  auto store_a = std::make_shared<ForkbaseClientStore>(ta, 16 << 20);

  net::SocketTransport::Options bopts;
  bopts.cache_push = true;
  bopts.max_inflight = 8;
  std::shared_ptr<net::SocketTransport> tb;
  ASSERT_TRUE(
      net::SocketTransport::Connect("127.0.0.1", server_->port(), &tb, bopts)
          .ok());
  auto store_b = std::make_shared<ForkbaseClientStore>(tb, 16 << 20);

  PosTree index_a(store_a);
  auto root_a = index_a.PutBatch(index_a.EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(root_a.ok());
  ASSERT_TRUE(store_a->Flush().ok());
  net::PublishRequest first;
  first.structure = "pos";
  first.branch = "main";
  first.new_root = *root_a;
  first.author = "a";
  first.message = "first";
  ASSERT_TRUE(ta->Publish(first).ok());

  // B builds from the empty root, unaware of A's commit: its publish
  // takes the contended merge path, which is exactly the path that
  // captures a staged batch to push.
  PosTree index_b(store_b);
  auto root_b = index_b.PutBatch(index_b.EmptyRoot(), {{"push/key", "v"}});
  ASSERT_TRUE(root_b.ok());
  ASSERT_TRUE(store_b->Flush().ok());
  net::PublishRequest second;
  second.structure = "pos";
  second.branch = "main";
  second.new_root = *root_b;
  second.author = "b";
  second.message = "second";
  auto published = tb->Publish(second);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  // The push arrived, digest-verified, at every layer's counter.
  const auto ts = tb->stats();
  ASSERT_GT(ts.pushed_nodes, 0u);
  EXPECT_GT(ts.pushed_bytes, 0u);
  EXPECT_GT(server_->stats().pushed_nodes, 0u);
  EXPECT_EQ(store_b->remote_stats().pushed_nodes, ts.pushed_nodes);

  // The merged head commit was in the staged batch: reading it back costs
  // B zero remote fetches.
  const uint64_t gets_before = store_b->remote_stats().remote_gets;
  auto head_commit = store_b->Get(published->head);
  ASSERT_TRUE(head_commit.ok());
  auto decoded = Commit::Decode(**head_commit);
  ASSERT_TRUE(decoded.ok());
  auto merged_root = store_b->Get(decoded->root);
  ASSERT_TRUE(merged_root.ok());
  EXPECT_EQ(store_b->remote_stats().remote_gets, gets_before)
      << "pushed nodes should have been cache hits";

  // Push is opt-in: A never asked, A never received.
  EXPECT_EQ(ta->stats().pushed_nodes, 0u);
  EXPECT_EQ(store_a->remote_stats().pushed_nodes, 0u);
}

// --- server options ----------------------------------------------------

TEST(ServerOptionsTest, GroupFsyncWindowOnByDefaultInServerMode) {
  // The policy split this struct documents: embedded stores default the
  // window OFF; a server turns it ON at Start.
  EXPECT_EQ(net::ServerOptions{}.group_flush_window_micros, 200u);

  const std::string path = ::testing::TempDir() + "/siri_server_opts_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  EXPECT_EQ(store->group_flush_window_micros(), 0u)  // embedded default: OFF
      << "FileNodeStore must not delay flushes unless a server asks it to";

  ForkbaseServlet servlet(store);
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(store->group_flush_window_micros(), 200u);  // server mode: ON
  server.Stop();
  std::remove(path.c_str());
}

TEST(ServerOptionsTest, ZeroWindowKeepsFlushesUndelayed) {
  const std::string path = ::testing::TempDir() + "/siri_server_opts0_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  ForkbaseServlet servlet(store);
  net::ServerOptions opts;
  opts.group_flush_window_micros = 0;
  net::SiriServer server(&servlet, opts);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(store->group_flush_window_micros(), 0u);
  server.Stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace siri
