// Copyright (c) 2026 The siri Authors. MIT license.
//
// Wire protocol and client/server boundary: codec round-trips, frame
// decoder hardening against malformed input (truncated, oversized,
// bit-flipped, garbled — the server must never crash on a hostile or
// broken peer), and the SiriServer + SocketTransport loopback path
// end-to-end against a real ForkbaseServlet.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/varint.h"
#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using net::FrameDecoder;
using net::MsgType;
using net::Request;
using testing_util::MakeKvs;

// --- request codec round-trips ---------------------------------------

Request RoundTrip(const Request& in) {
  const std::string payload = net::EncodeRequest(in);
  Request out;
  EXPECT_TRUE(net::DecodeRequest(payload, &out).ok());
  EXPECT_EQ(out.type, in.type);
  return out;
}

TEST(WireCodecTest, HelloRoundTrips) {
  Request in;
  in.type = MsgType::kHello;
  in.version = 7;
  EXPECT_EQ(RoundTrip(in).version, 7u);
}

TEST(WireCodecTest, HashRequestsRoundTrip) {
  for (MsgType t : {MsgType::kGet, MsgType::kContains, MsgType::kSizeOf}) {
    Request in;
    in.type = t;
    in.hash = Sha256::Digest("node");
    EXPECT_EQ(RoundTrip(in).hash, in.hash);
  }
}

TEST(WireCodecTest, PutRoundTripsArbitraryBytes) {
  Request in;
  in.type = MsgType::kPut;
  in.bytes = std::string("\x00\xff payload \x01", 12);
  EXPECT_EQ(RoundTrip(in).bytes, in.bytes);
}

TEST(WireCodecTest, PutManyRoundTripsBatch) {
  Request in;
  in.type = MsgType::kPutMany;
  for (int i = 0; i < 5; ++i) {
    auto bytes = std::make_shared<const std::string>(
        std::string(100 + i, static_cast<char>('a' + i)));
    in.batch.push_back({Sha256::Digest(*bytes), bytes});
  }
  Request out = RoundTrip(in);
  ASSERT_EQ(out.batch.size(), in.batch.size());
  for (size_t i = 0; i < in.batch.size(); ++i) {
    EXPECT_EQ(out.batch[i].hash, in.batch[i].hash);
    EXPECT_EQ(*out.batch[i].bytes, *in.batch[i].bytes);
  }
}

TEST(WireCodecTest, PublishRoundTripsWithAndWithoutExpectedHead) {
  Request in;
  in.type = MsgType::kPublish;
  in.structure = "pos";
  in.branch = "feature/x";
  in.new_root = Sha256::Digest("root");
  in.author = "alice";
  in.message = "commit message with spaces";
  Request out = RoundTrip(in);
  EXPECT_EQ(out.structure, "pos");
  EXPECT_EQ(out.branch, "feature/x");
  EXPECT_EQ(out.new_root, in.new_root);
  EXPECT_EQ(out.author, "alice");
  EXPECT_EQ(out.message, in.message);
  EXPECT_FALSE(out.expected_head.has_value());

  in.expected_head = Sha256::Digest("head");
  out = RoundTrip(in);
  ASSERT_TRUE(out.expected_head.has_value());
  EXPECT_EQ(*out.expected_head, *in.expected_head);
}

TEST(WireCodecTest, EmptyBodyRequestsRoundTrip) {
  for (MsgType t : {MsgType::kFlush, MsgType::kStoreStats,
                    MsgType::kResetCounters, MsgType::kListBranches}) {
    Request in;
    in.type = t;
    RoundTrip(in);
  }
}

TEST(WireCodecTest, DecodeRejectsUnknownTypeAndTrailingGarbage) {
  Request out;
  std::string unknown(1, static_cast<char>(200));
  EXPECT_TRUE(net::DecodeRequest(unknown, &out).IsCorruption());

  Request valid;
  valid.type = MsgType::kFlush;
  std::string trailing = net::EncodeRequest(valid) + "x";
  EXPECT_TRUE(net::DecodeRequest(trailing, &out).IsCorruption());

  EXPECT_TRUE(net::DecodeRequest(Slice(), &out).IsCorruption());
}

TEST(WireCodecTest, PutManyRejectsCountBeyondPayload) {
  // A count claiming more records than the payload could hold must be
  // rejected up front, not drive a giant reserve or a long decode loop.
  std::string payload(1, static_cast<char>(MsgType::kPutMany));
  PutVarint64(&payload, 1u << 30);
  Request out;
  EXPECT_TRUE(net::DecodeRequest(payload, &out).IsCorruption());
}

TEST(WireCodecTest, ResponseRoundTripsStatusAndBody) {
  const std::string payload =
      net::EncodeResponse(Status::OK(), Slice("result-bytes"));
  Status app;
  std::string body;
  ASSERT_TRUE(net::DecodeResponse(payload, &app, &body).ok());
  EXPECT_TRUE(app.ok());
  EXPECT_EQ(body, "result-bytes");

  const std::string err =
      net::EncodeResponse(Status::NotFound("no such node"), Slice());
  ASSERT_TRUE(net::DecodeResponse(err, &app, &body).ok());
  EXPECT_TRUE(app.IsNotFound());
  EXPECT_NE(app.ToString().find("no such node"), std::string::npos);
  EXPECT_TRUE(body.empty());
}

TEST(WireCodecTest, EveryStatusCodeSurvivesTheWire) {
  const std::vector<Status> all = {
      Status::OK(),
      Status::NotFound("a"),
      Status::Corruption("b"),
      Status::InvalidArgument("c"),
      Status::Conflict("d"),
      Status::NotSupported("e"),
      Status::IOError("f"),
      Status::ResourceExhausted("g"),
      Status::Unavailable("h"),
  };
  for (const Status& s : all) {
    const std::string payload = net::EncodeResponse(s, Slice());
    Status app;
    std::string body;
    ASSERT_TRUE(net::DecodeResponse(payload, &app, &body).ok());
    EXPECT_EQ(app.ok(), s.ok());
    EXPECT_EQ(app.IsNotFound(), s.IsNotFound());
    EXPECT_EQ(app.IsCorruption(), s.IsCorruption());
    EXPECT_EQ(app.IsConflict(), s.IsConflict());
    EXPECT_EQ(app.IsResourceExhausted(), s.IsResourceExhausted());
    EXPECT_EQ(app.IsUnavailable(), s.IsUnavailable());
  }
}

TEST(WireCodecTest, BadFrameRejectIsDistinguishable) {
  // The "bad frame: " marker is the replay-safety contract: only a
  // frame-layer reject (request never executed) carries it.
  EXPECT_TRUE(net::IsBadFrameReject(
      Status::Corruption(std::string(net::kBadFramePrefix) +
                         "frame digest mismatch")));
  EXPECT_FALSE(net::IsBadFrameReject(Status::Corruption("page log torn")));
  EXPECT_FALSE(net::IsBadFrameReject(
      Status::IOError(std::string(net::kBadFramePrefix) + "x")));
  EXPECT_FALSE(net::IsBadFrameReject(Status::OK()));
}

TEST(WireCodecTest, ResultBodiesRoundTrip) {
  net::WirePublishResult pub;
  pub.head = Sha256::Digest("head");
  pub.commit = Sha256::Digest("commit");
  pub.cas_failures = 3;
  pub.merge_commits = 2;
  net::WirePublishResult pub2;
  ASSERT_TRUE(
      net::DecodePublishResultBody(net::EncodePublishResultBody(pub), &pub2)
          .ok());
  EXPECT_EQ(pub2.head, pub.head);
  EXPECT_EQ(pub2.commit, pub.commit);
  EXPECT_EQ(pub2.cas_failures, 3u);
  EXPECT_EQ(pub2.merge_commits, 2u);

  BranchStats bs;
  bs.commits = 10;
  bs.cas_failures = 4;
  bs.merge_retries = 2;
  bs.combined_commits = 6;
  BranchStats bs2;
  ASSERT_TRUE(
      net::DecodeBranchStatsBody(net::EncodeBranchStatsBody(bs), &bs2).ok());
  EXPECT_EQ(bs2.commits, 10u);
  EXPECT_EQ(bs2.combined_commits, 6u);

  NodeStore::Stats ss;
  ss.puts = 1;
  ss.put_bytes = 2;
  ss.dup_puts = 3;
  ss.gets = 4;
  ss.get_bytes = 5;
  ss.unique_nodes = 6;
  ss.unique_bytes = 7;
  ss.flushes = 8;
  NodeStore::Stats ss2;
  ASSERT_TRUE(
      net::DecodeStoreStatsBody(net::EncodeStoreStatsBody(ss), &ss2).ok());
  EXPECT_EQ(ss2.puts, 1u);
  EXPECT_EQ(ss2.flushes, 8u);
  EXPECT_EQ(ss2.unique_bytes, 7u);

  const std::vector<std::string> branches = {"main", "", "feature/long-name"};
  std::vector<std::string> branches2;
  ASSERT_TRUE(
      net::DecodeStringListBody(net::EncodeStringListBody(branches), &branches2)
          .ok());
  EXPECT_EQ(branches2, branches);
}

// --- frame decoder hardening ------------------------------------------

TEST(FrameDecoderTest, ExtractsFrameDeliveredByteByByte) {
  const std::string payload = "hello frame";
  const std::string frame = net::EncodeFrame(payload);
  FrameDecoder dec;
  std::string out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.Append(&frame[i], 1);
    auto r = dec.Next(&out);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r) << "complete frame before the last byte arrived";
  }
  dec.Append(&frame[frame.size() - 1], 1);
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoderTest, ExtractsBackToBackFrames) {
  FrameDecoder dec;
  std::string stream;
  for (int i = 0; i < 10; ++i) {
    stream += net::EncodeFrame("payload-" + std::to_string(i));
  }
  dec.Append(stream.data(), stream.size());
  std::string out;
  for (int i = 0; i < 10; ++i) {
    auto r = dec.Next(&out);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(*r);
    EXPECT_EQ(out, "payload-" + std::to_string(i));
  }
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(FrameDecoderTest, TruncatedFrameIsNeedMoreNotError) {
  const std::string frame = net::EncodeFrame(std::string(1000, 'x'));
  FrameDecoder dec;
  dec.Append(frame.data(), frame.size() / 2);
  std::string out;
  auto r = dec.Next(&out);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // a torn frame is a hung-up peer, not corruption
}

TEST(FrameDecoderTest, OversizedLengthIsCorruption) {
  FrameDecoder dec(/*max_frame_bytes=*/1024);
  std::string frame;
  PutVarint64(&frame, 1 << 20);  // claims 1 MB against a 1 KB bound
  frame.append(32, '\0');
  dec.Append(frame.data(), frame.size());
  std::string out;
  auto r = dec.Next(&out);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FrameDecoderTest, MalformedLengthVarintIsCorruption) {
  // Ten continuation bytes: no valid varint64 is that long, and more
  // input can never fix it — must be typed corruption, not need-more.
  FrameDecoder dec;
  const std::string evil(10, '\xff');
  dec.Append(evil.data(), evil.size());
  std::string out;
  auto r = dec.Next(&out);
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(FrameDecoderTest, BitFlipAnywhereIsCorruptionNeverWrongPayload) {
  const std::string payload = "sensitive payload bytes";
  const std::string frame = net::EncodeFrame(payload);
  for (size_t i = 0; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string flipped = frame;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      FrameDecoder dec(/*max_frame_bytes=*/1 << 16);
      dec.Append(flipped.data(), flipped.size());
      std::string out;
      auto r = dec.Next(&out);
      // A flipped bit may make the frame corrupt (length/digest damage)
      // or incomplete (length now claims more bytes). What it must NEVER
      // do is deliver a payload different from what was framed.
      if (r.ok() && *r) {
        EXPECT_EQ(out, payload)
            << "bit flip at byte " << i << " delivered a wrong payload";
      }
    }
  }
}

TEST(FrameDecoderTest, FuzzedGarbageNeverCrashesAndNeverDeliversJunk) {
  // Deterministic xorshift fuzz: random mutations of valid frames plus
  // pure-garbage streams, delivered in random chunk sizes. The decoder
  // must never crash, never loop forever, and never hand back a payload
  // that was not framed intact.
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 300; ++round) {
    std::string stream;
    const int pieces = 1 + next_rand() % 4;
    std::vector<std::string> intact;
    for (int p = 0; p < pieces; ++p) {
      std::string payload(next_rand() % 200, ' ');
      for (char& c : payload) c = static_cast<char>(next_rand());
      std::string frame = net::EncodeFrame(payload);
      const bool mutate = next_rand() % 2 == 0;
      if (mutate) {
        const int flips = 1 + next_rand() % 4;
        for (int f = 0; f < flips; ++f) {
          frame[next_rand() % frame.size()] ^=
              static_cast<char>(1 << (next_rand() % 8));
        }
      } else {
        intact.push_back(payload);
      }
      stream += frame;
    }
    FrameDecoder dec(/*max_frame_bytes=*/1 << 16);
    size_t fed = 0;
    size_t delivered = 0;
    bool dead = false;
    while (fed < stream.size() && !dead) {
      const size_t chunk =
          std::min(stream.size() - fed, 1 + next_rand() % 97);
      dec.Append(stream.data() + fed, chunk);
      fed += chunk;
      for (;;) {
        std::string out;
        auto r = dec.Next(&out);
        if (!r.ok()) {
          dead = true;  // real connection would drop here
          break;
        }
        if (!*r) break;
        // Everything delivered before the first mutation point must be an
        // intact payload, verbatim.
        if (delivered < intact.size()) {
          EXPECT_EQ(out, intact[delivered]);
        }
        ++delivered;
      }
    }
  }
}

// --- loopback server + socket transport -------------------------------

class LoopbackServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    servlet_ = std::make_unique<ForkbaseServlet>(store_);
    servlet_->RegisterIndex(std::make_unique<PosTree>(store_));
    net::ServerOptions opts;
    opts.worker_threads = 2;
    opts.group_flush_window_micros = 0;  // in-memory store: no-op anyway
    server_ = std::make_unique<net::SiriServer>(servlet_.get(), opts);
    ASSERT_TRUE(server_->Listen(0).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::shared_ptr<net::SocketTransport> Connect() {
    std::shared_ptr<net::SocketTransport> t;
    Status s = net::SocketTransport::Connect("127.0.0.1", server_->port(), &t);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return t;
  }

  NodeStorePtr store_;
  std::unique_ptr<ForkbaseServlet> servlet_;
  std::unique_ptr<net::SiriServer> server_;
};

TEST_F(LoopbackServerTest, NodeOpsRoundTrip) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);

  const std::string payload(500, 'n');
  auto put = t->Put(payload);
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  EXPECT_EQ(*put, Sha256::Digest(payload));

  auto got = t->Get(*put);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, payload);

  auto contains = t->Contains(*put);
  ASSERT_TRUE(contains.ok());
  EXPECT_TRUE(*contains);
  auto absent = t->Contains(Sha256::Digest("never stored"));
  ASSERT_TRUE(absent.ok());
  EXPECT_FALSE(*absent);

  auto size = t->SizeOf(*put);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());

  auto missing = t->Get(Sha256::Digest("never stored"));
  EXPECT_TRUE(missing.status().IsNotFound());

  EXPECT_TRUE(t->Flush().ok());

  auto stats = t->StoreStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->puts, 1u);
  EXPECT_GE(stats->gets, 1u);

  // Real measured traffic, not simulated RTTs.
  const auto ts = t->stats();
  EXPECT_GT(ts.rpcs, 0u);
  EXPECT_GT(ts.bytes_sent, payload.size());
  EXPECT_GT(ts.bytes_received, payload.size());
  EXPECT_GT(ts.syscalls, 0u);
}

TEST_F(LoopbackServerTest, PutManyStoresWholeBatch) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  NodeBatch batch;
  for (int i = 0; i < 20; ++i) {
    auto bytes = std::make_shared<const std::string>(
        "node-" + std::to_string(i) + std::string(200, 'b'));
    batch.push_back({Sha256::Digest(*bytes), bytes});
  }
  ASSERT_TRUE(t->PutMany(batch).ok());
  for (const auto& rec : batch) {
    EXPECT_TRUE(store_->Contains(rec.hash));
  }
}

TEST_F(LoopbackServerTest, PutManyRejectsDigestMismatch) {
  // A socket is a trust boundary: the server re-digests uploads and a
  // batch whose claimed hash does not match its bytes is rejected whole.
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  NodeBatch batch;
  auto good = std::make_shared<const std::string>(std::string(100, 'g'));
  auto evil = std::make_shared<const std::string>(std::string(100, 'e'));
  batch.push_back({Sha256::Digest(*good), good});
  batch.push_back({Sha256::Digest("some other bytes"), evil});
  const Status s = t->PutMany(batch);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The lying record was not stored under its claimed digest.
  EXPECT_FALSE(store_->Contains(Sha256::Digest("some other bytes")));
  // The connection survives an application-level rejection.
  EXPECT_TRUE(t->Flush().ok());
}

TEST_F(LoopbackServerTest, BranchOpsRoundTrip) {
  auto t = Connect();
  ASSERT_NE(t, nullptr);

  auto missing = t->Head("main");
  EXPECT_TRUE(missing.status().IsNotFound());

  // Build a version server-side, then publish through the socket.
  PosTree index(store_);
  auto root = index.PutBatch(index.EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(root.ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "tester";
  pub.message = "first";
  auto published = t->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  auto head = t->Head("main");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, published->head);
  auto commit = servlet_->branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->root, *root);
  EXPECT_EQ(commit->author, "tester");

  auto bs = t->GetBranchStats("main");
  ASSERT_TRUE(bs.ok());
  EXPECT_EQ(bs->commits, 1u);

  auto branches = t->ListBranches();
  ASSERT_TRUE(branches.ok());
  ASSERT_EQ(branches->size(), 1u);
  EXPECT_EQ((*branches)[0], "main");

  // Unregistered structure: typed NotFound, not a dead connection.
  pub.structure = "mpt";
  auto unknown = t->Publish(pub);
  EXPECT_TRUE(unknown.status().IsNotFound());
  EXPECT_TRUE(t->Flush().ok());
}

TEST_F(LoopbackServerTest, GarbageConnectionDiesAloneServerSurvives) {
  auto healthy = Connect();
  ASSERT_NE(healthy, nullptr);

  // A raw socket spews garbage at the server.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string garbage(64, '\xff');
  ASSERT_EQ(send(fd, garbage.data(), garbage.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(garbage.size()));

  // The garbage connection is closed by the server (recv sees EOF).
  char buf[256];
  ssize_t n;
  for (;;) {
    n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // typed error response bytes, then close
  }
  EXPECT_EQ(n, 0);
  close(fd);

  // The healthy client is untouched, and the error was counted.
  auto put = healthy->Put(std::string(10, 'h'));
  EXPECT_TRUE(put.ok());
  EXPECT_GE(server_->stats().frame_errors, 1u);
  EXPECT_GE(server_->stats().connections, 2u);
}

TEST_F(LoopbackServerTest, VersionSkewFailsHandshakeTyped) {
  // Speak the protocol but claim a future version: the Hello must be
  // rejected with InvalidArgument, surfaced through Connect.
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  Request hello;
  hello.type = MsgType::kHello;
  hello.version = net::kWireVersion + 1;
  const std::string frame = net::EncodeFrame(net::EncodeRequest(hello));
  ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  FrameDecoder dec;
  std::string payload;
  bool got_response = false;
  for (;;) {
    auto r = dec.Next(&payload);
    ASSERT_TRUE(r.ok());
    if (*r) {
      got_response = true;
      break;
    }
    char buf[4096];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    dec.Append(buf, static_cast<size_t>(n));
  }
  close(fd);
  ASSERT_TRUE(got_response);
  Status app;
  std::string body;
  ASSERT_TRUE(net::DecodeResponse(payload, &app, &body).ok());
  EXPECT_TRUE(app.IsInvalidArgument()) << app.ToString();
}

TEST_F(LoopbackServerTest, ClientStoreOverSocketReadsAndCommits) {
  // The full stack: ForkbaseClientStore on a SocketTransport, index reads
  // through the node cache, and a commit published over the wire.
  auto t = Connect();
  ASSERT_NE(t, nullptr);
  auto client_store = std::make_shared<ForkbaseClientStore>(t, 16 << 20);

  PosTree server_index(store_);
  auto base = server_index.PutBatch(server_index.EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());

  PosTree client_index(client_store);
  auto got = client_index.Get(*base, testing_util::TKey(21), nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());

  auto root = client_index.PutBatch(*base, {{"socket/key", "socket/value"}});
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(client_store->Flush().ok());

  net::PublishRequest pub;
  pub.structure = "pos";
  pub.branch = "main";
  pub.new_root = *root;
  pub.author = "socket-client";
  pub.message = "over the wire";
  auto published = client_store->transport()->Publish(pub);
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  // Server-side visibility of the client's commit.
  auto head = servlet_->branches()->Head("main");
  ASSERT_TRUE(head.ok());
  auto commit = servlet_->branches()->ReadCommit(*head);
  ASSERT_TRUE(commit.ok());
  auto val = server_index.Get(commit->root, "socket/key", nullptr);
  ASSERT_TRUE(val.ok());
  ASSERT_TRUE(val->has_value());
  EXPECT_EQ(**val, "socket/value");
}

// --- server options ----------------------------------------------------

TEST(ServerOptionsTest, GroupFsyncWindowOnByDefaultInServerMode) {
  // The policy split this struct documents: embedded stores default the
  // window OFF; a server turns it ON at Start.
  EXPECT_EQ(net::ServerOptions{}.group_flush_window_micros, 200u);

  const std::string path = ::testing::TempDir() + "/siri_server_opts_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  EXPECT_EQ(store->group_flush_window_micros(), 0u)  // embedded default: OFF
      << "FileNodeStore must not delay flushes unless a server asks it to";

  ForkbaseServlet servlet(store);
  net::SiriServer server(&servlet);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(store->group_flush_window_micros(), 200u);  // server mode: ON
  server.Stop();
  std::remove(path.c_str());
}

TEST(ServerOptionsTest, ZeroWindowKeepsFlushesUndelayed) {
  const std::string path = ::testing::TempDir() + "/siri_server_opts0_" +
                           std::to_string(getpid()) + ".log";
  std::remove(path.c_str());
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path, &store).ok());
  ForkbaseServlet servlet(store);
  net::ServerOptions opts;
  opts.group_flush_window_micros = 0;
  net::SiriServer server(&servlet, opts);
  ASSERT_TRUE(server.Listen(0).ok());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(store->group_flush_window_micros(), 0u);
  server.Stop();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace siri
