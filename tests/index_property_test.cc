// Copyright (c) 2026 The siri Authors. MIT license.
//
// Parameterized property tests run against every index structure. These
// pin down the behaviors all four structures must share (the common
// ImmutableIndex contract) and the SIRI properties (§3.2) that only the
// SIRI instances must satisfy.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::Dump;
using testing_util::ExpectContent;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class IndexPropertyTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = MakeIndex(GetParam(), store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<ImmutableIndex> index_;
};

TEST_P(IndexPropertyTest, EmptyIndexHasNoRecords) {
  const Hash root = index_->EmptyRoot();
  EXPECT_EQ(Dump(*index_, root).size(), 0u);
  auto got = index_->Get(root, "anything", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST_P(IndexPropertyTest, SinglePutGet) {
  auto root = index_->Put(index_->EmptyRoot(), "k", "v");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  auto got = index_->Get(*root, "k", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "v");
}

TEST_P(IndexPropertyTest, PutBatchThenReadBack) {
  auto kvs = MakeKvs(500);
  auto root = index_->PutBatch(index_->EmptyRoot(), kvs);
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  std::map<std::string, std::string> expected;
  for (const auto& kv : kvs) expected[kv.key] = kv.value;
  ExpectContent(*index_, *root, expected);
}

TEST_P(IndexPropertyTest, OverwriteReplacesValue) {
  auto r1 = index_->Put(index_->EmptyRoot(), "k", "v1");
  ASSERT_TRUE(r1.ok());
  auto r2 = index_->Put(*r1, "k", "v2");
  ASSERT_TRUE(r2.ok());
  auto got = index_->Get(*r2, "k", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "v2");
  // Old version still intact (immutability).
  auto old = index_->Get(*r1, "k", nullptr);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(**old, "v1");
}

TEST_P(IndexPropertyTest, GetAbsentKeyReturnsNullopt) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(root.ok());
  auto got = index_->Get(*root, "nonexistent-key", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST_P(IndexPropertyTest, OldVersionsSurviveManyUpdates) {
  std::vector<Hash> roots;
  Hash root = index_->EmptyRoot();
  for (int v = 0; v < 10; ++v) {
    std::vector<KV> batch;
    for (int i = 0; i < 20; ++i) batch.push_back(KV{TKey(i), TVal(i, v)});
    auto next = index_->PutBatch(root, batch);
    ASSERT_TRUE(next.ok());
    root = *next;
    roots.push_back(root);
  }
  // Every historical version still answers with its own values.
  for (int v = 0; v < 10; ++v) {
    auto got = index_->Get(roots[v], TKey(7), nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, TVal(7, v)) << "version " << v;
  }
}

TEST_P(IndexPropertyTest, DeleteRemovesOnlyTargetKeys) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(100));
  ASSERT_TRUE(root.ok());
  std::vector<std::string> dels;
  for (int i = 0; i < 100; i += 3) dels.push_back(TKey(i));
  auto after = index_->DeleteBatch(*root, dels);
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  std::map<std::string, std::string> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 != 0) expected[TKey(i)] = TVal(i);
  }
  ExpectContent(*index_, *after, expected);
  // Deleted keys answer nullopt.
  auto got = index_->Get(*after, TKey(0), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got->has_value());
}

TEST_P(IndexPropertyTest, DeleteAllYieldsEmptyContent) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(64));
  ASSERT_TRUE(root.ok());
  std::vector<std::string> dels;
  for (int i = 0; i < 64; ++i) dels.push_back(TKey(i));
  auto after = index_->DeleteBatch(*root, dels);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Dump(*index_, *after).size(), 0u);
}

TEST_P(IndexPropertyTest, DeleteAbsentKeyIsNoOp) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(30));
  ASSERT_TRUE(root.ok());
  auto after = index_->Delete(*root, "no-such-key");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *root);  // same digest: nothing changed
}

TEST_P(IndexPropertyTest, DuplicateKeysInBatchLastWins) {
  std::vector<KV> kvs = {{"dup", "first"}, {"other", "x"}, {"dup", "second"}};
  auto root = index_->PutBatch(index_->EmptyRoot(), kvs);
  ASSERT_TRUE(root.ok());
  auto got = index_->Get(*root, "dup", nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "second");
}

TEST_P(IndexPropertyTest, RandomizedModelCheck) {
  // Random interleavings of upserts and deletes, compared against a
  // std::map reference model after every batch.
  Rng rng(0xfeed + static_cast<int>(GetParam()));
  std::map<std::string, std::string> model;
  Hash root = index_->EmptyRoot();
  for (int round = 0; round < 20; ++round) {
    std::vector<KV> puts;
    std::vector<std::string> dels;
    for (int i = 0; i < 40; ++i) {
      const int key = static_cast<int>(rng.Uniform(300));
      if (rng.Bernoulli(0.25) && !model.empty()) {
        dels.push_back(TKey(key));
      } else {
        puts.push_back(KV{TKey(key), TVal(key, round * 100 + i)});
      }
    }
    auto r1 = index_->PutBatch(root, puts);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    for (const auto& kv : puts) model[kv.key] = kv.value;
    auto r2 = index_->DeleteBatch(*r1, dels);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    for (const auto& k : dels) model.erase(k);
    root = *r2;
  }
  ExpectContent(*index_, root, model);
}

TEST_P(IndexPropertyTest, BinaryKeysAndValuesSurvive) {
  std::vector<KV> kvs;
  Rng rng(99);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 50; ++i) {
    std::string k = rng.Bytes(1 + rng.Uniform(40));
    std::string v = rng.Bytes(rng.Uniform(300));
    kvs.push_back(KV{k, v});
    expected[k] = v;
  }
  // Duplicate random keys: keep last like the batch contract says.
  auto root = index_->PutBatch(index_->EmptyRoot(), kvs);
  ASSERT_TRUE(root.ok());
  for (const auto& [k, v] : expected) {
    auto got = index_->Get(*root, k, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, v);
  }
}

TEST_P(IndexPropertyTest, EmptyValueIsStorable) {
  auto root = index_->Put(index_->EmptyRoot(), "k", "");
  ASSERT_TRUE(root.ok());
  auto got = index_->Get(*root, "k", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "");
}

TEST_P(IndexPropertyTest, KeyPrefixPairsCoexist) {
  // "a" is a strict prefix of "ab": exercises MPT branch values and
  // ordered-tree ordering of prefixed keys.
  auto r1 = index_->Put(index_->EmptyRoot(), "a", "va");
  ASSERT_TRUE(r1.ok());
  auto r2 = index_->Put(*r1, "ab", "vab");
  ASSERT_TRUE(r2.ok());
  auto r3 = index_->Put(*r2, "abc", "vabc");
  ASSERT_TRUE(r3.ok());
  for (const auto& [k, v] : std::map<std::string, std::string>{
           {"a", "va"}, {"ab", "vab"}, {"abc", "vabc"}}) {
    auto got = index_->Get(*r3, k, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got->has_value()) << k;
    EXPECT_EQ(**got, v);
  }
  // Deleting the middle one keeps the outer two.
  auto r4 = index_->Delete(*r3, "ab");
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(index_->Get(*r4, "a", nullptr)->has_value());
  EXPECT_FALSE(index_->Get(*r4, "ab", nullptr)->has_value());
  EXPECT_TRUE(index_->Get(*r4, "abc", nullptr)->has_value());
}

TEST_P(IndexPropertyTest, LookupStatsPopulated) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(512));
  ASSERT_TRUE(root.ok());
  LookupStats stats;
  auto got = index_->Get(*root, TKey(123), &stats);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_GE(stats.depth, 1);
  EXPECT_GE(stats.nodes_loaded, 1u);
  EXPECT_GT(stats.bytes_loaded, 0u);
}

TEST_P(IndexPropertyTest, CollectPagesCoversLookupPaths) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(256));
  ASSERT_TRUE(root.ok());
  PageSet pages;
  ASSERT_TRUE(index_->CollectPages(*root, &pages).ok());
  EXPECT_GE(pages.size(), 1u);
  // Every page must actually exist in the store.
  for (const Hash& h : pages) EXPECT_TRUE(store_->Contains(h));
}

TEST_P(IndexPropertyTest, VersionsShareUnchangedPages) {
  // Recursively Identical (§3.2): an update shares most pages with the
  // previous version. Not meaningful for tiny trees, so use 2000 records.
  auto root1 = index_->PutBatch(index_->EmptyRoot(), MakeKvs(2000));
  ASSERT_TRUE(root1.ok());
  auto root2 = index_->Put(*root1, TKey(1000), "updated!");
  ASSERT_TRUE(root2.ok());

  PageSet p1, p2;
  ASSERT_TRUE(index_->CollectPages(*root1, &p1).ok());
  ASSERT_TRUE(index_->CollectPages(*root2, &p2).ok());
  size_t shared = 0;
  for (const Hash& h : p2) shared += p1.count(h);
  const size_t changed = p2.size() - shared;
  // The rewritten path is a small fraction of all pages.
  EXPECT_GT(shared, p2.size() / 2) << "shared=" << shared
                                   << " total=" << p2.size();
  EXPECT_LT(changed, p2.size() / 2);
}

TEST_P(IndexPropertyTest, ScanVisitsEachKeyExactlyOnce) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(333));
  ASSERT_TRUE(root.ok());
  std::map<std::string, int> seen;
  ASSERT_TRUE(
      index_->Scan(*root, [&seen](Slice k, Slice) { ++seen[k.ToString()]; })
          .ok());
  EXPECT_EQ(seen.size(), 333u);
  for (const auto& [k, count] : seen) EXPECT_EQ(count, 1) << k;
}

// --- SIRI property: Structurally Invariant (§3.2, Definition 3.1(1)) ---
// Same record set => same root digest, regardless of insertion order or
// batching. Holds for MPT, MBT, POS-Tree; MVMB+-Tree (the non-SIRI
// baseline) is explicitly excluded.

class SiriOnlyPropertyTest : public IndexPropertyTest {};

TEST_P(SiriOnlyPropertyTest, StructurallyInvariantUnderPermutation) {
  auto kvs = MakeKvs(400);
  auto forward = index_->PutBatch(index_->EmptyRoot(), kvs);
  ASSERT_TRUE(forward.ok());

  std::vector<KV> reversed(kvs.rbegin(), kvs.rend());
  auto backward = index_->PutBatch(index_->EmptyRoot(), reversed);
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(*forward, *backward);

  // Shuffled, in many small batches.
  Rng rng(5);
  std::vector<KV> shuffled = kvs;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.Uniform(i)]);
  }
  Hash root = index_->EmptyRoot();
  for (size_t i = 0; i < shuffled.size(); i += 37) {
    std::vector<KV> batch(shuffled.begin() + i,
                          shuffled.begin() + std::min(i + 37, shuffled.size()));
    auto next = index_->PutBatch(root, batch);
    ASSERT_TRUE(next.ok());
    root = *next;
  }
  EXPECT_EQ(root, *forward);
}

TEST_P(SiriOnlyPropertyTest, StructurallyInvariantThroughUpdateChurn) {
  // Insert everything, overwrite some, delete the overwrites' victims, and
  // re-insert: final state equals direct construction.
  auto kvs = MakeKvs(200);
  auto direct = index_->PutBatch(index_->EmptyRoot(), kvs);
  ASSERT_TRUE(direct.ok());

  Hash root = index_->EmptyRoot();
  auto r1 = index_->PutBatch(root, MakeKvs(200, /*version=*/9));
  ASSERT_TRUE(r1.ok());
  std::vector<std::string> dels;
  for (int i = 50; i < 150; ++i) dels.push_back(TKey(i));
  auto r2 = index_->DeleteBatch(*r1, dels);
  ASSERT_TRUE(r2.ok());
  auto r3 = index_->PutBatch(*r2, kvs);  // restore canonical values
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(*r3, *direct);
}

TEST_P(SiriOnlyPropertyTest, DeletingInsertedKeyRestoresOldRoot) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(300));
  ASSERT_TRUE(base.ok());
  auto with_extra = index_->Put(*base, "zzz-extra", "tmp");
  ASSERT_TRUE(with_extra.ok());
  EXPECT_NE(*with_extra, *base);
  auto restored = index_->Delete(*with_extra, "zzz-extra");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, *base);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexPropertyTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    SiriIndexes, SiriOnlyPropertyTest,
    ::testing::Values(IndexKind::kMpt, IndexKind::kMbt, IndexKind::kPos,
                      IndexKind::kProlly),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

}  // namespace
}  // namespace siri
