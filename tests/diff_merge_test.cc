// Copyright (c) 2026 The siri Authors. MIT license.
//
// Diff (§4.1.3) and Merge (§4.1.4) across every index structure:
// correctness of record-level output, shared-subtree pruning, two-way and
// three-way merges, and conflict surfacing.

#include <gtest/gtest.h>

#include <map>

#include "index/diff.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::Dump;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class DiffMergeTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = MakeIndex(GetParam(), store_);
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<ImmutableIndex> index_;
};

TEST_P(DiffMergeTest, DiffOfIdenticalVersionsIsEmpty) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(root.ok());
  auto diff = index_->Diff(*root, *root);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->empty());
}

TEST_P(DiffMergeTest, DiffDetectsAddsModsAndDeletes) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(400));
  ASSERT_TRUE(base.ok());
  auto r1 = index_->PutBatch(*base, {{TKey(10), "mod10"}, {"newkey", "nv"}});
  ASSERT_TRUE(r1.ok());
  auto r2 = index_->Delete(*r1, TKey(20));
  ASSERT_TRUE(r2.ok());

  auto diff = index_->Diff(*base, *r2);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 3u);

  std::map<std::string, DiffEntry> by_key;
  for (const auto& e : *diff) by_key[e.key] = e;
  EXPECT_EQ(*by_key.at(TKey(10)).left, TVal(10));
  EXPECT_EQ(*by_key.at(TKey(10)).right, "mod10");
  EXPECT_FALSE(by_key.at("newkey").left.has_value());
  EXPECT_EQ(*by_key.at("newkey").right, "nv");
  EXPECT_TRUE(by_key.at(TKey(20)).left.has_value());
  EXPECT_FALSE(by_key.at(TKey(20)).right.has_value());
}

TEST_P(DiffMergeTest, DiffIsAntisymmetric) {
  auto a = index_->PutBatch(index_->EmptyRoot(), MakeKvs(100));
  ASSERT_TRUE(a.ok());
  auto b = index_->PutBatch(*a, {{TKey(5), "x"}, {"extra", "y"}});
  ASSERT_TRUE(b.ok());
  auto ab = index_->Diff(*a, *b);
  auto ba = index_->Diff(*b, *a);
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  ASSERT_EQ(ab->size(), ba->size());
  for (size_t i = 0; i < ab->size(); ++i) {
    EXPECT_EQ((*ab)[i].key, (*ba)[i].key);
    EXPECT_EQ((*ab)[i].left, (*ba)[i].right);
    EXPECT_EQ((*ab)[i].right, (*ba)[i].left);
  }
}

TEST_P(DiffMergeTest, DiffOutputSortedByKey) {
  auto a = index_->PutBatch(index_->EmptyRoot(), MakeKvs(300));
  ASSERT_TRUE(a.ok());
  std::vector<KV> scattered = {{TKey(250), "x"}, {TKey(3), "y"}, {TKey(99), "z"}};
  auto b = index_->PutBatch(*a, scattered);
  ASSERT_TRUE(b.ok());
  auto diff = index_->Diff(*a, *b);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->size(), 3u);
  for (size_t i = 1; i < diff->size(); ++i) {
    EXPECT_LT((*diff)[i - 1].key, (*diff)[i].key);
  }
}

TEST_P(DiffMergeTest, DiffSkipsSharedRegions) {
  // δ = 1 out of 5000: a pruned diff touches a small number of nodes.
  auto a = index_->PutBatch(index_->EmptyRoot(), MakeKvs(5000));
  ASSERT_TRUE(a.ok());
  auto b = index_->Put(*a, TKey(2500), "changed");
  ASSERT_TRUE(b.ok());
  store_->ResetOpCounters();
  auto diff = index_->Diff(*a, *b);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->size(), 1u);
  const uint64_t diff_gets = store_->stats().gets;
  PageSet pages;
  ASSERT_TRUE(index_->CollectPages(*a, &pages).ok());
  // Far fewer loads than visiting the two full trees.
  EXPECT_LT(diff_gets, 2 * pages.size());
  EXPECT_LT(diff_gets, 500u);
}

TEST_P(DiffMergeTest, TwoWayMergeOfDisjointKeySets) {
  // Two-way merge has no base: it can only union. With disjoint key sets
  // there is nothing to conflict on.
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());
  auto ours = index_->PutBatch(*base, {{"only-ours", "o"}});
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->PutBatch(*base, {{"only-theirs", "t"}});
  ASSERT_TRUE(theirs.ok());

  auto merged = index_->Merge(*ours, *theirs);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto content = Dump(*index_, *merged);
  EXPECT_EQ(content.at("only-ours"), "o");
  EXPECT_EQ(content.at("only-theirs"), "t");
  EXPECT_EQ(content.size(), 202u);
}

TEST_P(DiffMergeTest, ThreeWayMergeOfDisjointUpdates) {
  // With a base, updates to different keys merge without conflicts even
  // though each side still carries the base value of the other's key.
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(200));
  ASSERT_TRUE(base.ok());
  auto ours = index_->PutBatch(*base, {{TKey(1), "ours1"}, {"only-ours", "o"}});
  ASSERT_TRUE(ours.ok());
  auto theirs =
      index_->PutBatch(*base, {{TKey(2), "theirs2"}, {"only-theirs", "t"}});
  ASSERT_TRUE(theirs.ok());

  auto merged = index_->Merge3(*ours, *theirs, *base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto content = Dump(*index_, *merged);
  EXPECT_EQ(content.at(TKey(1)), "ours1");
  EXPECT_EQ(content.at(TKey(2)), "theirs2");
  EXPECT_EQ(content.at("only-ours"), "o");
  EXPECT_EQ(content.at("only-theirs"), "t");
  EXPECT_EQ(content.size(), 202u);
}

TEST_P(DiffMergeTest, MergeWithoutResolverConflictsOnDivergentValue) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Put(*base, TKey(7), "ours");
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(7), "theirs");
  ASSERT_TRUE(theirs.ok());
  auto merged = index_->Merge(*ours, *theirs);
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsConflict());
}

TEST_P(DiffMergeTest, MergeResolverPicksWinner) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Put(*base, TKey(7), "ours");
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(7), "theirs");
  ASSERT_TRUE(theirs.ok());
  auto merged = index_->Merge(
      *ours, *theirs,
      [](const std::string&, const std::optional<std::string>& o,
         const std::optional<std::string>& t) {
        return std::optional<std::string>(*o + "+" + *t);
      });
  ASSERT_TRUE(merged.ok());
  auto got = index_->Get(*merged, TKey(7), nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "ours+theirs");
}

TEST_P(DiffMergeTest, MergeResolverCanDropKey) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(20));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Put(*base, TKey(3), "ours");
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(3), "theirs");
  ASSERT_TRUE(theirs.ok());
  auto merged = index_->Merge(
      *ours, *theirs,
      [](const std::string&, const std::optional<std::string>&,
         const std::optional<std::string>&) {
        return std::optional<std::string>{};
      });
  ASSERT_TRUE(merged.ok());
  EXPECT_FALSE(index_->Get(*merged, TKey(3), nullptr)->has_value());
}

TEST_P(DiffMergeTest, ThreeWayMergeTakesBothSides) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(100));
  ASSERT_TRUE(base.ok());
  auto ours = index_->PutBatch(*base, {{TKey(1), "ours1"}});
  ASSERT_TRUE(ours.ok());
  auto theirs_mid = index_->PutBatch(*base, {{TKey(2), "theirs2"}});
  ASSERT_TRUE(theirs_mid.ok());
  auto theirs = index_->Delete(*theirs_mid, TKey(3));
  ASSERT_TRUE(theirs.ok());

  auto merged = index_->Merge3(*ours, *theirs, *base);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto content = Dump(*index_, *merged);
  EXPECT_EQ(content.at(TKey(1)), "ours1");      // our change kept
  EXPECT_EQ(content.at(TKey(2)), "theirs2");    // their change applied
  EXPECT_EQ(content.count(TKey(3)), 0u);        // their delete applied
  EXPECT_EQ(content.size(), 99u);
}

TEST_P(DiffMergeTest, ThreeWayMergeIdenticalChangesDoNotConflict) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Put(*base, TKey(5), "same");
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(5), "same");
  ASSERT_TRUE(theirs.ok());
  auto merged = index_->Merge3(*ours, *theirs, *base);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*index_->Get(*merged, TKey(5), nullptr)->value().c_str(), *"same");
}

TEST_P(DiffMergeTest, ThreeWayMergeConflictsOnDivergence) {
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Put(*base, TKey(5), "mine");
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(5), "yours");
  ASSERT_TRUE(theirs.ok());
  auto merged = index_->Merge3(*ours, *theirs, *base);
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsConflict());
}

TEST_P(DiffMergeTest, ThreeWayMergeDeleteVsModifyConflictSeesDeletion) {
  // Regression: the resolver used to receive value_or(""), conflating a
  // deleted side with a write of the empty string. It must see nullopt for
  // the deleting side and the real value for the modifying side.
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(50));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Delete(*base, TKey(7));
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(7), "modified");
  ASSERT_TRUE(theirs.ok());

  // Without a resolver this is a conflict, not a silent pick.
  auto unresolved = index_->Merge3(*ours, *theirs, *base);
  ASSERT_FALSE(unresolved.ok());
  EXPECT_TRUE(unresolved.status().IsConflict());

  bool saw_delete_vs_modify = false;
  auto merged = index_->Merge3(
      *ours, *theirs, *base,
      [&](const std::string&, const std::optional<std::string>& o,
          const std::optional<std::string>& t) -> std::optional<std::string> {
        saw_delete_vs_modify = !o.has_value() && t.has_value();
        return t;  // modify wins over delete
      });
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_TRUE(saw_delete_vs_modify);
  auto got = index_->Get(*merged, TKey(7), nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "modified");
}

TEST_P(DiffMergeTest, ThreeWayMergeDeleteVsEmptyStringIsStillAConflict) {
  // Deleting a key and writing "" are different changes; identical-change
  // suppression must not kick in and the resolver must see the difference.
  auto base = index_->PutBatch(index_->EmptyRoot(), MakeKvs(30));
  ASSERT_TRUE(base.ok());
  auto ours = index_->Delete(*base, TKey(3));
  ASSERT_TRUE(ours.ok());
  auto theirs = index_->Put(*base, TKey(3), "");
  ASSERT_TRUE(theirs.ok());

  std::optional<std::string> seen_ours = std::string("sentinel");
  std::optional<std::string> seen_theirs;
  auto merged = index_->Merge3(
      *ours, *theirs, *base,
      [&](const std::string&, const std::optional<std::string>& o,
          const std::optional<std::string>& t) -> std::optional<std::string> {
        seen_ours = o;
        seen_theirs = t;
        return std::nullopt;  // drop the key
      });
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_FALSE(seen_ours.has_value());          // deletion, not ""
  ASSERT_TRUE(seen_theirs.has_value());
  EXPECT_EQ(*seen_theirs, "");                  // empty-string write, not deletion
  EXPECT_FALSE(index_->Get(*merged, TKey(3), nullptr)->has_value());
}

TEST_P(DiffMergeTest, CountMatchesContent) {
  auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(137));
  ASSERT_TRUE(root.ok());
  auto count = index_->Count(*root);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 137u);
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, DiffMergeTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

TEST(DiffHelperTest, DiffSortedEntriesMergeJoins) {
  std::vector<KV> left = {{"a", "1"}, {"b", "2"}, {"d", "4"}};
  std::vector<KV> right = {{"b", "2"}, {"c", "3"}, {"d", "5"}};
  DiffResult out;
  DiffSortedEntries(left, right, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].key, "a");  // left only
  EXPECT_EQ(out[1].key, "c");  // right only
  EXPECT_EQ(out[2].key, "d");  // modified
  EXPECT_EQ(*out[2].left, "4");
  EXPECT_EQ(*out[2].right, "5");
}

}  // namespace
}  // namespace siri
