// Copyright (c) 2026 The siri Authors. MIT license.
//
// Shared helpers for the test suite: index factories (so property tests can
// sweep all four structures), reference-model comparison, and tiny
// conveniences.

#ifndef SIRI_TESTS_TEST_UTIL_H_
#define SIRI_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "index/mbt/mbt.h"
#include "index/mpt/mpt.h"
#include "index/mvmb/mvmb_tree.h"
#include "index/pos/pos_tree.h"
#include "store/node_store.h"

namespace siri {
namespace testing_util {

enum class IndexKind { kMpt, kMbt, kPos, kMvmb, kProlly };

inline const char* KindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kMpt: return "mpt";
    case IndexKind::kMbt: return "mbt";
    case IndexKind::kPos: return "pos";
    case IndexKind::kMvmb: return "mvmb";
    case IndexKind::kProlly: return "prolly";
  }
  return "?";
}

/// Builds an index of the given kind over the given store. MBT uses a small
/// capacity so tests exercise multi-entry buckets.
inline std::unique_ptr<ImmutableIndex> MakeIndex(IndexKind kind,
                                                 NodeStorePtr store) {
  switch (kind) {
    case IndexKind::kMpt:
      return std::make_unique<Mpt>(std::move(store));
    case IndexKind::kMbt: {
      MbtOptions opt;
      opt.num_buckets = 64;
      opt.fanout = 4;
      return std::make_unique<Mbt>(std::move(store), opt);
    }
    case IndexKind::kPos:
      return std::make_unique<PosTree>(std::move(store));
    case IndexKind::kMvmb:
      return std::make_unique<MvmbTree>(std::move(store));
    case IndexKind::kProlly:
      return std::make_unique<PosTree>(std::move(store),
                                       PosTreeOptions::Prolly());
  }
  return nullptr;
}

/// All kinds, for INSTANTIATE_TEST_SUITE_P.
inline std::vector<IndexKind> AllKinds() {
  return {IndexKind::kMpt, IndexKind::kMbt, IndexKind::kPos, IndexKind::kMvmb,
          IndexKind::kProlly};
}

/// Reads every record reachable from \p root into a sorted map.
inline std::map<std::string, std::string> Dump(const ImmutableIndex& index,
                                               const Hash& root) {
  std::map<std::string, std::string> out;
  Status s = index.Scan(root, [&out](Slice k, Slice v) {
    out[k.ToString()] = v.ToString();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

/// Asserts that the index content under \p root equals \p expected, both by
/// scan and by point lookups.
inline void ExpectContent(const ImmutableIndex& index, const Hash& root,
                          const std::map<std::string, std::string>& expected) {
  EXPECT_EQ(Dump(index, root), expected);
  for (const auto& [k, v] : expected) {
    auto got = index.Get(root, k, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(got->has_value()) << "missing key " << k;
    EXPECT_EQ(**got, v);
  }
}

/// Deterministic key/value helpers.
inline std::string TKey(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

inline std::string TVal(int i, int version = 0) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "value%06d.v%d", i, version);
  return buf;
}

inline std::vector<KV> MakeKvs(int n, int version = 0) {
  std::vector<KV> kvs;
  kvs.reserve(n);
  for (int i = 0; i < n; ++i) kvs.push_back(KV{TKey(i), TVal(i, version)});
  return kvs;
}

}  // namespace testing_util
}  // namespace siri

#endif  // SIRI_TESTS_TEST_UTIL_H_
