// Copyright (c) 2026 The siri Authors. MIT license.
//
// Crash-consistency harness: the page log and the ref log under simulated
// power cuts, torn tails, fsync failures, and full disks — every fault
// delivered deterministically through io::FaultEnv (io/fault_env.h).
//
// The core is a crash-point sweep: run a fixed commit workload over a
// buffered FaultEnv, make mutating-op #k fail as a power cut, reboot the
// simulated disk (dropping or tearing everything not covered by a
// completed fsync), reopen both logs, and check the cross-file invariants
//
//   1. no acked commit lost — every commit the workload saw succeed has
//      its pages byte-exact and its commit object readable after reopen;
//   2. no phantom head — the recovered branch head is an acked commit or
//      the single in-flight attempt, never anything else;
//   3. mutual consistency — whatever head the ref log recovers, its
//      commit object and root pages are present in the recovered page
//      store (the two logs never disagree).
//
// Sweeping k across every op of the workload visits every failure site in
// the write path: mid-append, between append and fsync, mid-recovery
// rewrite, between rename and directory fsync.
//
// A harness is only as good as the bugs it can see, so two tests
// deliberately reintroduce historical bug classes and assert the harness
// FAILS: the missing-parent-dir-fsync hole (set_drop_dir_syncs) and the
// fsyncgate forget-the-error hole (set_sticky_errors_for_testing(false)).
//
// The tail of the file leaves the simulator: a real SiriServer over a
// FaultEnv-backed store, a real SocketTransport client, and an injected
// disk fault — asserting the typed read-only degradation contract
// end-to-end over the wire.
//
// SIRI_CRASH=1 (the crash-labeled ctest entry) scales the sweep up.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "store/file_store.h"
#include "store/node_store.h"
#include "system/forkbase.h"
#include "tests/test_util.h"
#include "version/commit.h"
#include "version/ref_log.h"

namespace siri {
namespace {

using io::CrashSpec;
using io::FaultEnv;
using io::IoFaultKind;
using testing_util::MakeKvs;

constexpr char kBranch[] = "main";
constexpr char kPagesPath[] = "pages.log";
constexpr char kRefsPath[] = "refs.log";

int SweepCommits() {
  const char* scaled = std::getenv("SIRI_CRASH");
  return (scaled && scaled[0] == '1') ? 20 : 8;
}

// --- the workload -------------------------------------------------------

/// One commit the workload attempted: its pages (content kept for
/// byte-exact recovery checks), its root, and — once acked — its commit
/// digest.
struct CommitRecord {
  Hash commit;
  Hash root;
  NodeBatch pages;
};

/// What the workload accomplished before the injected fault stopped it.
/// `inflight` is the attempt in progress at the stop: its ref record may
/// or may not have reached the log, so recovery may legitimately surface
/// it — but then it must be fully materialized (invariant 3).
struct WorkloadLog {
  std::vector<CommitRecord> acked;
  std::optional<CommitRecord> inflight;
  Status stopped = Status::OK();
};

NodeBatch MakePages(int commit_idx, const std::string& salt) {
  NodeBatch batch;
  for (int p = 0; p < 3; ++p) {
    std::string bytes = "page/" + salt + "/" + std::to_string(commit_idx) +
                        "/" + std::to_string(p) + "/" +
                        std::string(48, static_cast<char>(
                                            'a' + (commit_idx * 7 + p) % 26));
    NodeRecord rec;
    rec.bytes = std::make_shared<const std::string>(std::move(bytes));
    rec.hash = Sha256::Digest(*rec.bytes);
    batch.push_back(std::move(rec));
  }
  return batch;
}

/// Runs \p commits sequential commits (3 fresh pages each) through the
/// full durable stack — FileNodeStore + BranchManager + attached RefLog,
/// every byte via \p env — recording exactly which commits were acked.
/// Stops at the first error (the injected fault; the sticky latch keeps
/// later calls failing). With \p retry_failed_commit_once the workload
/// retries a failed commit with the SAME batch — the access pattern that
/// springs the fsyncgate trap when the sticky latch is disabled.
WorkloadLog RunCommitWorkload(FaultEnv* env, bool fsync_each, int commits,
                              const std::string& salt,
                              bool sticky_errors = true,
                              bool retry_failed_commit_once = false) {
  WorkloadLog log;
  std::shared_ptr<FileNodeStore> store;
  Status s = FileNodeStore::Open(env, kPagesPath, &store);
  if (!s.ok()) {
    log.stopped = s;
    return log;
  }
  store->set_sticky_errors_for_testing(sticky_errors);
  BranchManager mgr(store);
  RefLog::Options ropts;
  ropts.fsync_each = fsync_each;
  ropts.env = env;
  s = mgr.AttachRefLog(kRefsPath, ropts);
  if (!s.ok()) {
    log.stopped = s;
    return log;
  }

  for (int i = 0; i < commits; ++i) {
    CommitRecord rec;
    rec.pages = MakePages(i, salt);
    rec.root = rec.pages.back().hash;
    log.inflight = rec;
    const std::string message = salt + "-c" + std::to_string(i);
    store->PutMany(rec.pages);
    auto committed = mgr.CommitOnBranch(kBranch, rec.root, "harness", message);
    if (!committed.ok() && retry_failed_commit_once) {
      store->PutMany(rec.pages);
      committed = mgr.CommitOnBranch(kBranch, rec.root, "harness", message);
    }
    if (!committed.ok()) {
      log.stopped = committed.status();
      return log;
    }
    rec.commit = *committed;
    log.acked.push_back(rec);
    log.inflight.reset();
  }
  return log;
}

// --- the verifier -------------------------------------------------------

/// Reopens both logs through \p env and checks the three cross-file
/// invariants against what the workload recorded. \p fsync_each must
/// match the workload's ref-log mode: with per-swing fsyncs the head may
/// not roll back past the last acked commit; without them losing head
/// *position* is allowed (the pages never are).
::testing::AssertionResult VerifyRecovery(FaultEnv* env, bool fsync_each,
                                          const WorkloadLog& log) {
  std::shared_ptr<FileNodeStore> store;
  Status s = FileNodeStore::Open(env, kPagesPath, &store);
  if (!s.ok()) {
    return ::testing::AssertionFailure()
           << "page log failed to reopen: " << s.ToString();
  }
  BranchManager mgr(store);
  RefLog::Options ropts;
  ropts.fsync_each = fsync_each;
  ropts.env = env;
  s = mgr.AttachRefLog(kRefsPath, ropts);
  if (!s.ok()) {
    return ::testing::AssertionFailure()
           << "ref log failed to reopen: " << s.ToString();
  }

  // Invariant 1: no acked commit lost.
  for (size_t i = 0; i < log.acked.size(); ++i) {
    const CommitRecord& a = log.acked[i];
    for (const NodeRecord& p : a.pages) {
      auto got = store->Get(p.hash);
      if (!got.ok()) {
        return ::testing::AssertionFailure()
               << "acked commit " << i << " lost a page after reopen: "
               << got.status().ToString();
      }
      if (**got != *p.bytes) {
        return ::testing::AssertionFailure()
               << "acked commit " << i << " page content corrupted";
      }
    }
    auto c = mgr.ReadCommit(a.commit);
    if (!c.ok()) {
      return ::testing::AssertionFailure()
             << "acked commit object " << i
             << " unreadable: " << c.status().ToString();
    }
    if (!(c->root == a.root)) {
      return ::testing::AssertionFailure()
             << "acked commit " << i << " recovered with wrong root";
    }
  }

  // Invariants 2 + 3: the recovered head.
  auto head = mgr.Head(kBranch);
  if (!head.ok()) {
    if (fsync_each && !log.acked.empty()) {
      return ::testing::AssertionFailure()
             << "fsync_each ref log lost the branch despite "
             << log.acked.size() << " acked commits";
    }
    return ::testing::AssertionSuccess();
  }

  int acked_idx = -1;
  for (size_t i = 0; i < log.acked.size(); ++i) {
    if (log.acked[i].commit == *head) acked_idx = static_cast<int>(i);
  }
  if (acked_idx >= 0) {
    if (fsync_each && acked_idx + 1 != static_cast<int>(log.acked.size())) {
      return ::testing::AssertionFailure()
             << "fsync_each head rolled back to acked commit " << acked_idx
             << " of " << log.acked.size();
    }
    return ::testing::AssertionSuccess();
  }

  // The head is not an acked commit: the only legitimate identity left is
  // the in-flight attempt — which must then be fully materialized.
  if (!log.inflight) {
    return ::testing::AssertionFailure()
           << "phantom head " << head->ToHex() << ": no commit in flight";
  }
  auto c = mgr.ReadCommit(*head);
  if (!c.ok()) {
    return ::testing::AssertionFailure()
           << "recovered head unreadable: " << c.status().ToString();
  }
  if (!(c->root == log.inflight->root)) {
    return ::testing::AssertionFailure()
           << "recovered head is neither an acked commit nor the in-flight "
              "attempt";
  }
  if (log.acked.empty()) {
    if (!c->parents.empty()) {
      return ::testing::AssertionFailure()
             << "in-flight head has a parent but nothing was acked";
    }
  } else if (c->parents.size() != 1 ||
             !(c->parents[0] == log.acked.back().commit)) {
    return ::testing::AssertionFailure()
           << "in-flight head does not chain on the last acked commit";
  }
  for (const NodeRecord& p : log.inflight->pages) {
    if (!store->Contains(p.hash)) {
      return ::testing::AssertionFailure()
             << "in-flight head is visible but its pages are not";
    }
  }
  return ::testing::AssertionSuccess();
}

// --- the sweep ----------------------------------------------------------

TEST(CrashSweepTest, EveryCrashPointRecoversConsistently) {
  const int commits = SweepCommits();
  int points = 0;
  int interrupted_runs = 0;
  for (const bool fsync_each : {true, false}) {
    // The op count of a clean run bounds the sweep.
    uint64_t total_ops = 0;
    {
      FaultEnv clean(io::Env::Default(), FaultEnv::Mode::kBuffered);
      WorkloadLog log =
          RunCommitWorkload(&clean, fsync_each, commits, "clean");
      ASSERT_EQ(log.acked.size(), static_cast<size_t>(commits))
          << log.stopped.ToString();
      total_ops = clean.op_count();
    }
    ASSERT_GE(total_ops, 40u);  // the sweep really visits the write path

    for (const auto fate : {CrashSpec::UnsyncedFate::kDrop,
                            CrashSpec::UnsyncedFate::kKeepPrefix}) {
      for (uint64_t k = 0; k <= total_ops; ++k) {
        SCOPED_TRACE("fsync_each=" + std::to_string(fsync_each) +
                     " fate=" + std::to_string(static_cast<int>(fate)) +
                     " crash_at=" + std::to_string(k));
        FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
        env.set_crash_at_op(k);
        WorkloadLog log = RunCommitWorkload(&env, fsync_each, commits, "swp");
        if (env.stats().power_cut_failures > 0) ++interrupted_runs;
        CrashSpec spec;
        spec.fate = fate;
        spec.seed = k + 1;
        env.Reboot(spec);
        EXPECT_TRUE(VerifyRecovery(&env, fsync_each, log));
        ++points;
      }
    }
  }
  // The acceptance floor: a real sweep, not a token one.
  EXPECT_GE(points, 50);
  EXPECT_GT(interrupted_runs, 0);
}

// --- simultaneous torn tails (both logs at once) ------------------------

TEST(CrashSweepTest, TornTailsInBothLogsRecoverMutuallyConsistent) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  // fsync_each OFF: ref records are flushed, not fsynced, so the whole
  // record suffix is unsynced — the torn-tail generator's raw material.
  WorkloadLog log;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &store).ok());
    BranchManager mgr(store);
    RefLog::Options ropts;
    ropts.env = &env;
    ASSERT_TRUE(mgr.AttachRefLog(kRefsPath, ropts).ok());
    for (int i = 0; i < 5; ++i) {
      CommitRecord rec;
      rec.pages = MakePages(i, "torn");
      rec.root = rec.pages.back().hash;
      store->PutMany(rec.pages);
      auto committed =
          mgr.CommitOnBranch(kBranch, rec.root, "harness", "torn-c" +
                                                               std::to_string(i));
      ASSERT_TRUE(committed.ok());
      rec.commit = *committed;
      log.acked.push_back(rec);
    }
    // One more batch appended but never flushed: unsynced page bytes.
    CommitRecord rec;
    rec.pages = MakePages(99, "torn");
    rec.root = rec.pages.back().hash;
    store->PutMany(rec.pages);
    log.inflight = rec;
  }

  // Pin a mid-record tear in BOTH files: the ref records are fixed-size
  // (same branch name every swing), so three-and-a-bit records lands the
  // head exactly on acked commit #2.
  const uint64_t refs_unsynced =
      *env.FileSize(kRefsPath) - *env.DurableSize(kRefsPath);
  ASSERT_EQ(refs_unsynced % 5, 0u) << "ref records unexpectedly ragged";
  const uint64_t per_record = refs_unsynced / 5;
  CrashSpec spec;
  spec.keep_unsynced[kPagesPath] = 9;  // mid-record garbage in the page log
  spec.keep_unsynced[kRefsPath] = 3 * per_record + 7;
  env.Reboot(spec);

  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &store).ok());
  BranchManager mgr(store);
  RefLog::Options ropts;
  ropts.env = &env;
  ASSERT_TRUE(mgr.AttachRefLog(kRefsPath, ropts).ok());

  // Both logs were genuinely torn and both truncated their tails.
  EXPECT_GE(store->recovered_truncations(), 1u);
  ASSERT_NE(mgr.ref_log(), nullptr);
  EXPECT_GE(mgr.ref_log()->recovered_truncations(), 1u);

  // The pair is mutually consistent: the head is exactly the last ref
  // record that survived whole, and everything it references is present.
  auto head = mgr.Head(kBranch);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(*head, log.acked[2].commit);
  auto c = mgr.ReadCommit(*head);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->root, log.acked[2].root);
  for (const NodeRecord& p : log.acked[2].pages) {
    EXPECT_TRUE(store->Contains(p.hash));
  }
  // The full-invariant check agrees (head rollback is legal here: the
  // lost swings were never fsynced).
  EXPECT_TRUE(VerifyRecovery(&env, /*fsync_each=*/false, log));
}

// --- harness self-tests: reintroduced bugs must be caught ---------------

/// The double-crash scenario that exposes a missing parent-directory
/// fsync: crash #1 leaves a torn page log; reopening triggers the atomic
/// truncation rewrite (temp file + rename + SyncDir); more commits land
/// in the renamed inode; crash #2 rolls the directory back to the OLD
/// torn inode if the SyncDir never really happened — and every commit
/// fsynced into the new inode is gone.
::testing::AssertionResult RunDirFsyncScenario(bool drop_dir_syncs) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  WorkloadLog epoch1 =
      RunCommitWorkload(&env, /*fsync_each=*/true, 3, "epoch1");
  if (epoch1.acked.size() != 3) {
    return ::testing::AssertionFailure()
           << "epoch 1 did not complete: " << epoch1.stopped.ToString();
  }
  // Tear the page log: append one batch, never flush, cut keeping 7
  // garbage bytes past the durable prefix.
  {
    std::shared_ptr<FileNodeStore> store;
    Status s = FileNodeStore::Open(&env, kPagesPath, &store);
    if (!s.ok()) return ::testing::AssertionFailure() << s.ToString();
    store->PutMany(MakePages(50, "tear"));
  }
  CrashSpec crash1;
  crash1.keep_unsynced[kPagesPath] = 7;
  env.Reboot(crash1);

  // Epoch 2 reopens (running the truncation rewrite) and commits more —
  // with or without real directory fsyncs backing the rewrite's rename.
  env.set_drop_dir_syncs(drop_dir_syncs);
  WorkloadLog epoch2 =
      RunCommitWorkload(&env, /*fsync_each=*/true, 3, "epoch2");
  if (epoch2.acked.size() != 3) {
    return ::testing::AssertionFailure()
           << "epoch 2 did not complete: " << epoch2.stopped.ToString();
  }
  env.set_drop_dir_syncs(false);

  // Crash #2: nothing is in flight, so a correct stack loses nothing.
  env.Reboot();

  WorkloadLog combined;
  combined.acked = epoch1.acked;
  combined.acked.insert(combined.acked.end(), epoch2.acked.begin(),
                        epoch2.acked.end());
  return VerifyRecovery(&env, /*fsync_each=*/true, combined);
}

TEST(CrashHarnessSelfTest, CatchesMissingDirFsyncAfterRecoveryRewrite) {
  // With the fix in place the double crash loses nothing...
  EXPECT_TRUE(RunDirFsyncScenario(/*drop_dir_syncs=*/false));
  // ...and with the bug deliberately reintroduced the harness FAILS —
  // proving the sweep's dir-fsync coverage is real, not vacuous.
  EXPECT_FALSE(RunDirFsyncScenario(/*drop_dir_syncs=*/true));
}

TEST(CrashHarnessSelfTest, CatchesFsyncgateWhenStickyLatchDisabled) {
  // Sweep a single injected fsync failure across every op. The workload
  // retries each failed commit once with the same batch — the pattern
  // that loses data when the store forgets a failed fsync: the retry
  // dedups against resident-but-dropped pages and the next fsync
  // "succeeds" over a hole.
  const int commits = 4;
  uint64_t total_ops = 0;
  {
    FaultEnv clean(io::Env::Default(), FaultEnv::Mode::kBuffered);
    WorkloadLog log =
        RunCommitWorkload(&clean, /*fsync_each=*/true, commits, "fgate");
    ASSERT_EQ(log.acked.size(), static_cast<size_t>(commits));
    total_ops = clean.op_count();
  }

  for (const bool sticky : {true, false}) {
    bool caught = false;
    for (uint64_t k = 0; k < total_ops; ++k) {
      FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
      env.ScriptAt(k, {IoFaultKind::kSyncFail, 0});
      WorkloadLog log = RunCommitWorkload(&env, /*fsync_each=*/true, commits,
                                          "fgate", sticky,
                                          /*retry_failed_commit_once=*/true);
      env.Reboot();
      if (!VerifyRecovery(&env, /*fsync_each=*/true, log)) caught = true;
    }
    if (sticky) {
      // The latch holds: a store that failed an fsync never acks again,
      // so no sweep point can lose an acked commit.
      EXPECT_FALSE(caught) << "sticky latch failed to contain fsync failure";
    } else {
      // Report-once-and-forget: at least one sweep point acks a commit
      // whose pages the failed fsync already dropped — and the harness
      // sees the loss.
      EXPECT_TRUE(caught) << "harness missed the reintroduced fsyncgate bug";
    }
  }
}

// --- partial-append poisoning (the sticky-latch regression) -------------

TEST(StickyErrorTest, ShortWritePoisonsStoreAndTruncationStopsAtFirstTear) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &store).ok());
  const NodeBatch clean_batch = MakePages(0, "short");
  store->PutMany(clean_batch);
  ASSERT_TRUE(store->Flush().ok());

  // Tear the next batch's single log append mid-record.
  env.ScriptNext({IoFaultKind::kShortWrite, 11});
  const NodeBatch torn_batch = MakePages(1, "short");
  store->PutMany(torn_batch);
  EXPECT_FALSE(store->DiskStatus().ok());
  // Nothing of the torn batch became visible.
  for (const NodeRecord& p : torn_batch) {
    EXPECT_FALSE(store->Contains(p.hash));
  }

  // Poisoned means poisoned: no further op reaches the file, so no
  // record can land after the tear and bury it mid-file.
  const uint64_t ops = env.op_count();
  (void)store->Put(Slice("after-the-tear"));
  store->PutMany(MakePages(2, "short"));
  EXPECT_FALSE(store->Flush().ok());
  EXPECT_EQ(env.op_count(), ops);

  // Crash keeping ALL unsynced bytes (worst case: the torn prefix
  // survives verbatim); reopen truncates at the first tear and nothing
  // else.
  CrashSpec spec;
  spec.keep_unsynced[kPagesPath] = UINT64_MAX;
  env.Reboot(spec);
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &reopened).ok());
  EXPECT_GE(reopened->recovered_truncations(), 1u);
  for (const NodeRecord& p : clean_batch) {
    EXPECT_TRUE(reopened->Contains(p.hash));
  }
  for (const NodeRecord& p : torn_batch) {
    EXPECT_FALSE(reopened->Contains(p.hash));
  }
  EXPECT_TRUE(reopened->DiskStatus().ok());  // reopen is the reset
}

TEST(StickyErrorTest, RefLogLatchesAfterFailedAppend) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  std::shared_ptr<RefLog> refs;
  RefLog::Options opts;
  opts.env = &env;
  ASSERT_TRUE(RefLog::Open(kRefsPath, opts, &refs).ok());
  const Hash h1 = Sha256::Digest(std::string("head-1"));
  ASSERT_TRUE(refs->Append("b", h1).ok());

  env.ScriptNext({IoFaultKind::kShortWrite, 5});
  EXPECT_FALSE(refs->Append("b", Sha256::Digest(std::string("head-2"))).ok());
  EXPECT_FALSE(refs->DiskStatus().ok());
  // Fail fast forever: no head record can land after a torn one.
  const uint64_t ops = env.op_count();
  EXPECT_FALSE(refs->Append("b", Sha256::Digest(std::string("head-3"))).ok());
  EXPECT_FALSE(refs->Sync().ok());
  EXPECT_EQ(env.op_count(), ops);

  // Recovery: the torn record truncates, the first head survives.
  CrashSpec spec;
  spec.keep_unsynced[kRefsPath] = UINT64_MAX;
  env.Reboot(spec);
  std::shared_ptr<RefLog> reopened;
  ASSERT_TRUE(RefLog::Open(kRefsPath, opts, &reopened).ok());
  EXPECT_GE(reopened->recovered_truncations(), 1u);
  auto it = reopened->recovered_heads().find("b");
  ASSERT_NE(it, reopened->recovered_heads().end());
  EXPECT_EQ(it->second, h1);
}

TEST(StickyErrorTest, EnospcIsStickyAndPublishIsNotAcked) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  WorkloadLog warm = RunCommitWorkload(&env, /*fsync_each=*/true, 1, "full");
  ASSERT_EQ(warm.acked.size(), 1u);

  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &store).ok());
  BranchManager mgr(store);
  RefLog::Options ropts;
  ropts.fsync_each = true;
  ropts.env = &env;
  ASSERT_TRUE(mgr.AttachRefLog(kRefsPath, ropts).ok());

  // The disk fills; the next commit's publish must NOT be acked.
  env.set_enospc_after_op(env.op_count());
  const NodeBatch batch = MakePages(5, "full");
  store->PutMany(batch);
  auto committed = mgr.CommitOnBranch(kBranch, batch.back().hash, "harness",
                                      "doomed");
  ASSERT_FALSE(committed.ok());
  EXPECT_TRUE(committed.status().IsResourceExhausted())
      << committed.status().ToString();
  EXPECT_TRUE(store->DiskStatus().IsResourceExhausted());
  auto head = mgr.Head(kBranch);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, warm.acked[0].commit);

  // Space coming back does not un-lie the store: the latch never resets.
  env.set_enospc_after_op(UINT64_MAX);
  EXPECT_TRUE(store->Flush().IsResourceExhausted());
  EXPECT_TRUE(store->DiskStatus().IsResourceExhausted());

  // Reopen IS the reset: a fresh handle on the freed disk works.
  std::shared_ptr<FileNodeStore> fresh;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &fresh).ok());
  EXPECT_TRUE(fresh->DiskStatus().ok());
}

TEST(StickyErrorTest, FailedFsyncNeverRetroactivelyClaimsDurability) {
  FaultEnv env(io::Env::Default(), FaultEnv::Mode::kBuffered);
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &store).ok());
  const NodeBatch batch = MakePages(0, "fsync");
  store->PutMany(batch);

  // The batch is one append op; the covering fsync is the very next
  // mutating op — fail the fsync itself.
  const uint64_t before = env.op_count();
  env.ScriptAt(before, {IoFaultKind::kSyncFail, 0});
  EXPECT_FALSE(store->Flush().ok());
  ASSERT_EQ(env.stats().sync_failures, 1u) << "script missed the fsync op";
  EXPECT_FALSE(store->DiskStatus().ok());

  // Even a flush whose appends all predate the failure fails fast — the
  // failed fsync may have discarded exactly those dirty bytes, so no
  // later OK may claim they are durable.
  EXPECT_FALSE(store->Flush().ok());
  env.Reboot();
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(&env, kPagesPath, &reopened).ok());
  for (const NodeRecord& p : batch) {
    EXPECT_FALSE(reopened->Contains(p.hash))
        << "unacked bytes resurrected as durable";
  }
}

// --- server degradation over the real socket path -----------------------

class DegradedServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<FaultEnv>(io::Env::Default(),
                                      FaultEnv::Mode::kBuffered);
    std::shared_ptr<FileNodeStore> fs;
    ASSERT_TRUE(FileNodeStore::Open(env_.get(), kPagesPath, &fs).ok());
    store_ = fs;
    servlet_ = std::make_unique<ForkbaseServlet>(store_);
    RefLog::Options ropts;
    ropts.env = env_.get();
    ASSERT_TRUE(servlet_->branches()->AttachRefLog(kRefsPath, ropts).ok());
    servlet_->RegisterIndex(std::make_unique<PosTree>(store_));
    net::ServerOptions opts;
    opts.worker_threads = 2;
    opts.group_flush_window_micros = 0;
    server_ = std::make_unique<net::SiriServer>(servlet_.get(), opts);
    ASSERT_TRUE(server_->Listen(0).ok());
    ASSERT_TRUE(server_->Start().ok());

    net::SocketTransport::Options topts;
    topts.rpc_timeout_ms = 10000;
    topts.retry.max_attempts = 8;
    topts.retry.backoff_init_ms = 2;
    topts.retry.backoff_max_ms = 20;
    ASSERT_TRUE(net::SocketTransport::Connect("127.0.0.1", server_->port(),
                                              &client_, topts)
                    .ok());
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<FaultEnv> env_;
  NodeStorePtr store_;
  std::unique_ptr<ForkbaseServlet> servlet_;
  std::unique_ptr<net::SiriServer> server_;
  std::shared_ptr<net::SocketTransport> client_;
};

TEST_F(DegradedServerTest, EnospcFlipsServerReadOnlyWithTypedRejects) {
  // Healthy baseline: one page and one published commit over the wire.
  auto resident = client_->Put(std::string("resident-page"));
  ASSERT_TRUE(resident.ok());
  PosTree index(store_);
  auto root1 = index.PutBatch(index.EmptyRoot(), MakeKvs(8));
  ASSERT_TRUE(root1.ok());
  net::PublishRequest pub1;
  pub1.structure = "pos";
  pub1.branch = kBranch;
  pub1.new_root = *root1;
  pub1.author = "crash";
  pub1.message = "healthy";
  auto head1 = client_->Publish(pub1);
  ASSERT_TRUE(head1.ok()) << head1.status().ToString();
  EXPECT_FALSE(server_->stats().degraded);

  // Build the next root while the disk is still healthy, then fill it.
  auto root2 = index.PutBatch(*root1, {{"crash/one-more", "v"}});
  ASSERT_TRUE(root2.ok());
  const uint64_t retries_before = client_->stats().retries;
  env_->set_enospc_after_op(env_->op_count());

  // The tripping publish: not acked, and the error arrives TYPED over the
  // wire — ResourceExhausted carrying the degraded-mode tag.
  net::PublishRequest pub2 = pub1;
  pub2.new_root = *root2;
  pub2.message = "doomed";
  pub2.expected_head = head1->head;
  auto published = client_->Publish(pub2);
  ASSERT_FALSE(published.ok());
  EXPECT_TRUE(published.status().IsResourceExhausted())
      << published.status().ToString();
  EXPECT_TRUE(net::IsDegradedReject(published.status()))
      << published.status().ToString();
  // A degraded reject is persistent — the client fails fast, no retry
  // storm against a full disk.
  EXPECT_EQ(client_->stats().retries, retries_before);

  // Writes of every flavor get the same typed reject...
  EXPECT_TRUE(client_->Put(std::string("rejected")).status()
                  .IsResourceExhausted());
  NodeBatch batch = MakePages(7, "rejected");
  EXPECT_TRUE(client_->PutMany(batch).IsResourceExhausted());
  EXPECT_TRUE(client_->Flush().IsResourceExhausted());

  // ...while reads keep serving resident state over the same connection.
  auto got = client_->Get(*resident);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(**got, "resident-page");
  auto head = client_->Head(kBranch);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, head1->head);
  EXPECT_TRUE(client_->GetBranchStats(kBranch).ok());

  // The degradation is observable in server stats, with its cause.
  const auto st = server_->stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_GE(st.degraded_rejects, 3u);
  EXPECT_NE(st.degraded_cause.find("enospc"), std::string::npos)
      << st.degraded_cause;

  // And the unacked publish is really not there: the head never moved.
  EXPECT_EQ(servlet_->branches()->branch_stats(kBranch).commits, 1u);
}

TEST_F(DegradedServerTest, EioOnFsyncDegradesWithUnavailableRejects) {
  auto resident = client_->Put(std::string("eio-resident"));
  ASSERT_TRUE(resident.ok());

  // Fail the fsync that the client's next Flush issues.
  env_->ScriptNext({IoFaultKind::kEIO, 0});
  const Status flushed = client_->Flush();
  ASSERT_FALSE(flushed.ok());
  EXPECT_TRUE(net::IsDegradedReject(flushed)) << flushed.ToString();

  // EIO is not out-of-space: the sticky cause maps to Unavailable.
  EXPECT_TRUE(client_->Put(std::string("x")).status().IsUnavailable());
  auto got = client_->Get(*resident);
  ASSERT_TRUE(got.ok());
  const auto st = server_->stats();
  EXPECT_TRUE(st.degraded);
  EXPECT_NE(st.degraded_cause.find("eio"), std::string::npos)
      << st.degraded_cause;
}

}  // namespace
}  // namespace siri
