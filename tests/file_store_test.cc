// Copyright (c) 2026 The siri Authors. MIT license.
//
// FileNodeStore: durability across reopen, crash-truncation recovery, and
// full index operation over a disk-backed store.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/varint.h"
#include "crypto/sha256.h"
#include "index/pos/pos_tree.h"
#include "store/file_store.h"
#include "system/ledger.h"
#include "tests/test_util.h"
#include "version/commit.h"
#include "version/ref_log.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keyed by pid AND fixture address: ctest -jN runs tests of this
    // binary as concurrent processes, and the fixture lands at the same
    // heap address in each — pid keeps their logs apart.
    path_ = ::testing::TempDir() + "/siri_store_" + std::to_string(getpid()) +
            "_" + std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  const Hash h = store->Put("disk-backed page");
  auto got = store->Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "disk-backed page");
}

TEST_F(FileStoreTest, SurvivesReopen) {
  Hash root;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    PosTree tree(store);
    auto r = tree.PutBatch(Hash::Zero(), MakeKvs(500));
    ASSERT_TRUE(r.ok());
    root = *r;
    ASSERT_TRUE(store->Flush().ok());
  }  // store closed

  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  PosTree tree(reopened);
  std::map<std::string, std::string> expected;
  for (const auto& kv : MakeKvs(500)) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(tree, root), expected);
}

TEST_F(FileStoreTest, RecoversFromTruncatedTail) {
  Hash root;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    PosTree tree(store);
    auto r = tree.PutBatch(Hash::Zero(), MakeKvs(200));
    ASSERT_TRUE(r.ok());
    root = *r;
    ASSERT_TRUE(store->Flush().ok());
  }

  // Simulate a crash mid-append: chop bytes off the end.
  FILE* f = fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  ASSERT_GT(size, 10);
  ASSERT_EQ(truncate(path_.c_str(), size - 7), 0);
  fclose(f);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  EXPECT_GT(recovered->recovered_truncations(), 0u);
  // The store still serves every complete page; only the torn tail page is
  // gone. New writes append cleanly after recovery.
  const Hash h = recovered->Put("fresh page after recovery");
  EXPECT_TRUE(recovered->Get(h).ok());
}

TEST_F(FileStoreTest, DeduplicatesAcrossSessions) {
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    (void)store->Put("shared page");  // digest unused: dedup is the subject
    ASSERT_TRUE(store->Flush().ok());
  }
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  const auto before = store->stats();
  (void)store->Put("shared page");  // already on disk: digest unused
  const auto after = store->stats();
  EXPECT_EQ(after.unique_nodes, before.unique_nodes);
  EXPECT_EQ(after.dup_puts, 1u);
}

// Log geometry for the white-box corruption tests below: 8-byte magic
// header, then per record `varint len | 32-byte digest | page bytes`.
// With 100-byte pages the varint is one byte, so records are 133 bytes.
constexpr long kHeaderSize = 8;
constexpr long kRecordSize = 1 + 32 + 100;
constexpr long kPayloadOffset = 1 + 32;

std::string PageOf(int i) { return std::string(100, static_cast<char>('a' + i)); }

TEST_F(FileStoreTest, DetectsBitFlipAndDropsSuffix) {
  std::vector<Hash> hashes;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    for (int i = 0; i < 5; ++i) hashes.push_back(store->Put(PageOf(i)));
    ASSERT_TRUE(store->Flush().ok());
  }

  // Flip one byte inside the payload of record 2.
  FILE* f = fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long victim = kHeaderSize + 2 * kRecordSize + kPayloadOffset + 10;
  ASSERT_EQ(fseek(f, victim, SEEK_SET), 0);
  fputc('Z', f);
  fclose(f);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  // Records 2, 3, 4 are dropped: replay truncates at the first mismatch.
  EXPECT_EQ(recovered->recovered_truncations(), 3u);
  EXPECT_TRUE(recovered->Get(hashes[0]).ok());
  EXPECT_TRUE(recovered->Get(hashes[1]).ok());
  for (int i = 2; i < 5; ++i) {
    auto got = recovered->Get(hashes[i]);
    EXPECT_FALSE(got.ok()) << "corrupt/suffix page " << i << " served";
  }
  // The corrupted bytes must not be indexed under any digest: every page
  // the store serves verifies against the digest it is keyed by.
  for (const Hash& h : hashes) {
    auto got = recovered->Get(h);
    if (got.ok()) EXPECT_EQ(Sha256::Digest(**got), h);
  }
  // Appends work after recovery and survive another reopen.
  const Hash fresh = recovered->Put(PageOf(7));
  ASSERT_TRUE(recovered->Flush().ok());
  recovered.reset();
  std::shared_ptr<FileNodeStore> again;
  ASSERT_TRUE(FileNodeStore::Open(path_, &again).ok());
  EXPECT_EQ(again->recovered_truncations(), 0u);
  EXPECT_TRUE(again->Get(fresh).ok());
}

TEST_F(FileStoreTest, TruncationCountsDroppedRecords) {
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    for (int i = 0; i < 3; ++i) store->Put(PageOf(i));
    ASSERT_TRUE(store->Flush().ok());
  }
  // Tear the last record in half: exactly one page is dropped.
  ASSERT_EQ(truncate(path_.c_str(), kHeaderSize + 2 * kRecordSize + 50), 0);
  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  EXPECT_EQ(recovered->recovered_truncations(), 1u);
  EXPECT_EQ(recovered->stats().unique_nodes, 2u);
}

TEST_F(FileStoreTest, TornHeaderSelfHeals) {
  // Crash while stamping a fresh log leaves a strict prefix of the magic;
  // reopening must recover an empty store, not wedge on Corruption.
  FILE* f = fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite("SIR", 1, 3, f);
  fclose(f);
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  EXPECT_EQ(store->recovered_truncations(), 0u);
  const Hash h = store->Put(PageOf(0));
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  std::shared_ptr<FileNodeStore> again;
  ASSERT_TRUE(FileNodeStore::Open(path_, &again).ok());
  EXPECT_TRUE(again->Get(h).ok());
}

TEST_F(FileStoreTest, HugeCorruptLengthTruncatesInsteadOfCrashing) {
  std::shared_ptr<FileNodeStore> first;
  ASSERT_TRUE(FileNodeStore::Open(path_, &first).ok());
  const Hash h = first->Put(PageOf(0));
  ASSERT_TRUE(first->Flush().ok());
  first.reset();

  // Append a record whose length varint decodes near UINT64_MAX — a naive
  // `kSize + len` bounds check would wrap and read out of bounds.
  FILE* f = fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::string evil;
  PutVarint64(&evil, ~uint64_t{0});
  evil += std::string(40, '\x5a');  // fake digest + some payload
  fwrite(evil.data(), 1, evil.size(), f);
  fclose(f);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  EXPECT_EQ(recovered->recovered_truncations(), 1u);
  EXPECT_TRUE(recovered->Get(h).ok());
}

TEST_F(FileStoreTest, RejectsDigestlessLegacyLog) {
  // A pre-header log (or any foreign file) must fail loudly, not be
  // silently mis-framed as pages.
  FILE* f = fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::string legacy = "\x05hello\x03olddata";
  fwrite(legacy.data(), 1, legacy.size(), f);
  fclose(f);
  std::shared_ptr<FileNodeStore> store;
  Status s = FileNodeStore::Open(path_, &store);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
}

TEST_F(FileStoreTest, CommittedBlockSurvivesProcessKill) {
  // Child process: append one block through the Ledger commit boundary
  // with sync_on_commit, then die without running any cleanup. The
  // acknowledged block must be readable after reopen.
  const auto kvs = MakeKvs(300);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::shared_ptr<FileNodeStore> store;
    if (!FileNodeStore::Open(path_, &store).ok()) _exit(1);
    PosTree tree(store);
    Ledger ledger(&tree, /*batch_build=*/true, /*sync_on_commit=*/true);
    if (!ledger.AppendBlock(kvs).ok()) _exit(2);
    _exit(0);  // crash: no destructors, no stdio flush-at-exit
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // Same data through the same code path is content-addressed to the same
  // root, so the parent can derive the expected root independently.
  auto mem = NewInMemoryNodeStore();
  PosTree ref(mem);
  Ledger ref_ledger(&ref);
  auto expected_root = ref_ledger.AppendBlock(kvs);
  ASSERT_TRUE(expected_root.ok());

  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  PosTree tree(reopened);
  std::map<std::string, std::string> expected;
  for (const auto& kv : kvs) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(tree, *expected_root), expected);
}

TEST_F(FileStoreTest, OpenFailsOnBadDirectory) {
  std::shared_ptr<FileNodeStore> store;
  EXPECT_FALSE(
      FileNodeStore::Open("/no/such/dir/at/all/store.log", &store).ok());
}

// --- Batched appends (PutMany) and flush economy ---------------------------

NodeBatch BatchOf(int first, int count) {
  NodeBatch batch;
  for (int i = first; i < first + count; ++i) {
    NodeRecord rec;
    rec.bytes = std::make_shared<const std::string>(PageOf(i));
    rec.hash = Sha256::Digest(*rec.bytes);
    batch.push_back(std::move(rec));
  }
  return batch;
}

TEST_F(FileStoreTest, PutManyBatchSurvivesReopen) {
  const NodeBatch batch = BatchOf(0, 5);
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    store->PutMany(batch);
    const auto stats = store->stats();
    EXPECT_EQ(stats.puts, 5u);
    EXPECT_EQ(stats.unique_nodes, 5u);
    ASSERT_TRUE(store->Flush().ok());
  }
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  for (const NodeRecord& rec : batch) {
    auto got = reopened->Get(rec.hash);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(**got, *rec.bytes);
  }
}

TEST_F(FileStoreTest, PutManySkipsResidentAndInBatchDuplicates) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  (void)store->Put(PageOf(0));  // already resident before the batch
  NodeBatch batch = BatchOf(0, 3);
  batch.push_back(batch[1]);  // duplicate digest within the batch
  store->PutMany(batch);
  const auto stats = store->stats();
  EXPECT_EQ(stats.puts, 5u);      // 1 Put + 4 batch records offered
  EXPECT_EQ(stats.dup_puts, 2u);  // resident page + in-batch duplicate
  EXPECT_EQ(stats.unique_nodes, 3u);
  // Only the three unique records ever reached the log.
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->stats().unique_nodes, 3u);
}

TEST_F(FileStoreTest, TornBatchedAppendRecoversCommittedPrefix) {
  // Commit one batch (flushed), then crash in the middle of a second
  // batched append: the first batch and the complete leading records of
  // the torn batch survive, the torn record is counted and dropped.
  const NodeBatch committed = BatchOf(0, 3);
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    store->PutMany(committed);
    ASSERT_TRUE(store->Flush().ok());
    store->PutMany(BatchOf(10, 3));
    ASSERT_TRUE(store->Flush().ok());
  }
  // Tear the log inside the second record of the second batch.
  ASSERT_EQ(truncate(path_.c_str(), kHeaderSize + 4 * kRecordSize + 40), 0);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  EXPECT_EQ(recovered->recovered_truncations(), 1u);
  EXPECT_EQ(recovered->stats().unique_nodes, 4u);
  for (const NodeRecord& rec : committed) {
    EXPECT_TRUE(recovered->Get(rec.hash).ok());
  }
  // Fresh batched appends after recovery survive another reopen.
  const NodeBatch fresh = BatchOf(20, 2);
  recovered->PutMany(fresh);
  ASSERT_TRUE(recovered->Flush().ok());
  recovered.reset();
  std::shared_ptr<FileNodeStore> again;
  ASSERT_TRUE(FileNodeStore::Open(path_, &again).ok());
  EXPECT_EQ(again->recovered_truncations(), 0u);
  EXPECT_TRUE(again->Get(fresh[0].hash).ok());
  EXPECT_TRUE(again->Get(fresh[1].hash).ok());
}

// --- Group fsync (wait-a-little flush coalescing) --------------------------

TEST_F(FileStoreTest, ConcurrentFlushersCoalesceIntoFewerFsyncs) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  ASSERT_TRUE(store->Flush().ok());  // header fsync out of the way
  const uint64_t fsyncs_before = store->fsync_count();

  // A generous window so every writer's append lands while the first
  // flusher is still holding the door open: K committers, each one
  // batched append + one Flush, must come out with FEWER than K fsyncs
  // (the group-commit property) while every page is durable.
  store->set_group_flush_window_micros(300000);
  constexpr int kWriters = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      store->PutMany(BatchOf(10 * t, 3));
      ASSERT_TRUE(store->Flush().ok());
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  const uint64_t fsyncs = store->fsync_count() - fsyncs_before;
  EXPECT_GE(fsyncs, 1u);
  EXPECT_LT(fsyncs, static_cast<uint64_t>(kWriters));
  EXPECT_GE(store->coalesced_flushes(), kWriters - fsyncs);

  // Durability was not traded away: everything survives a reopen.
  store.reset();
  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  EXPECT_EQ(reopened->stats().unique_nodes, 3u * kWriters);
}

TEST_F(FileStoreTest, GroupWindowOffKeepsFlushSemantics) {
  // Window 0 (the default): a dirty Flush issues its own fsync — the
  // per-commit accounting the occ tests rely on is unchanged.
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  ASSERT_TRUE(store->Flush().ok());
  const uint64_t before = store->fsync_count();
  store->PutMany(BatchOf(0, 2));
  ASSERT_TRUE(store->Flush().ok());
  store->PutMany(BatchOf(10, 2));
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->fsync_count(), before + 2);
  EXPECT_EQ(store->coalesced_flushes(), 0u);
}

// --- Cross-commit write dedup (recently-flushed digest ring) ---------------

TEST_F(FileStoreTest, RecentDigestRingSkipsPagesAConcurrentCommitterLanded) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());

  // Committer 1 lands pages 0-3; committer 2's batch shares pages 2-3
  // (the shared-key-prefix case): the ring catches the overlap.
  store->PutMany(BatchOf(0, 4));
  EXPECT_EQ(store->dedup_skips(), 0u);
  store->PutMany(BatchOf(2, 4));
  EXPECT_EQ(store->dedup_skips(), 2u);
  EXPECT_EQ(store->stats().unique_nodes, 6u);
  EXPECT_EQ(store->stats().dup_puts, 2u);

  // Single-page Put re-offering a recent page is caught too (digest
  // dropped: the skip counters are the subject).
  (void)store->Put(PageOf(5));
  EXPECT_EQ(store->dedup_skips(), 3u);
  EXPECT_EQ(store->stats().unique_nodes, 6u);
}

TEST_F(FileStoreTest, RecentDigestRingEvictsOldestDigests) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  // Push page 0, then roll the ring over completely with unique pages.
  // Digests dropped throughout: the ring/skip counters are the subject.
  (void)store->Put(PageOf(0));
  for (size_t i = 0; i < FileNodeStore::kRecentRingSize; ++i) {
    (void)store->Put("filler-" + std::to_string(i));
  }
  // Page 0 fell off the ring: re-offering it is still a dup (resident
  // map), but no longer a ring hit.
  const uint64_t skips_before = store->dedup_skips();
  (void)store->Put(PageOf(0));
  EXPECT_EQ(store->dedup_skips(), skips_before);
  EXPECT_EQ(store->stats().dup_puts, 1u);
}

// --- Branch-head persistence (sidecar ref log) -----------------------------

class RefLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid-keyed like FileStoreTest: concurrent ctest processes of this
    // binary must not share scratch files.
    base_ = ::testing::TempDir() + "/siri_refs_" + std::to_string(getpid()) +
            "_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    log_path_ = base_ + ".sirilog";
    ref_path_ = base_ + ".refs";
    std::remove(log_path_.c_str());
    std::remove(ref_path_.c_str());
  }

  void TearDown() override {
    std::remove(log_path_.c_str());
    std::remove(ref_path_.c_str());
  }

  std::string base_, log_path_, ref_path_;
};

TEST_F(RefLogTest, LastRecordPerBranchWinsAndTombstonesDelete) {
  Hash h1 = Sha256::Digest("one"), h2 = Sha256::Digest("two");
  {
    std::shared_ptr<RefLog> log;
    ASSERT_TRUE(RefLog::Open(ref_path_, {}, &log).ok());
    ASSERT_TRUE(log->Append("main", h1).ok());
    ASSERT_TRUE(log->Append("dev", h1).ok());
    ASSERT_TRUE(log->Append("main", h2).ok());   // later record wins
    ASSERT_TRUE(log->AppendDelete("dev").ok());  // tombstone
    ASSERT_TRUE(log->Sync().ok());
  }
  std::shared_ptr<RefLog> reopened;
  ASSERT_TRUE(RefLog::Open(ref_path_, {}, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  const auto& heads = reopened->recovered_heads();
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads.at("main"), h2);
}

TEST_F(RefLogTest, TornTailIsTruncatedNotFatal) {
  Hash h1 = Sha256::Digest("one");
  {
    std::shared_ptr<RefLog> log;
    ASSERT_TRUE(RefLog::Open(ref_path_, {}, &log).ok());
    ASSERT_TRUE(log->Append("main", h1).ok());
  }
  // Tear the file mid-way through a would-be second record.
  FILE* f = fopen(ref_path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  fwrite("\x20garbage", 1, 8, f);
  fclose(f);

  std::shared_ptr<RefLog> recovered;
  ASSERT_TRUE(RefLog::Open(ref_path_, {}, &recovered).ok());
  EXPECT_GT(recovered->recovered_truncations(), 0u);
  EXPECT_EQ(recovered->recovered_heads().at("main"), h1);
  // Appends after recovery frame cleanly.
  ASSERT_TRUE(recovered->Append("dev", h1).ok());
  recovered.reset();
  std::shared_ptr<RefLog> again;
  ASSERT_TRUE(RefLog::Open(ref_path_, {}, &again).ok());
  EXPECT_EQ(again->recovered_heads().size(), 2u);
}

TEST_F(RefLogTest, BranchHeadsSurviveProcessKill) {
  // Child: commit on two branches through a ref-logged BranchManager over
  // the durable store, then die without any cleanup. Parent: reopen both
  // logs — the branches must point at the committed heads, fully
  // readable. (Same fork/_exit pattern as CommittedBlockSurvivesProcessKill.)
  const auto kvs = MakeKvs(120);
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::shared_ptr<FileNodeStore> store;
    if (!FileNodeStore::Open(log_path_, &store).ok()) _exit(1);
    BranchManager mgr(store);
    if (!mgr.AttachRefLog(ref_path_).ok()) _exit(2);
    PosTree tree(store);
    auto root = tree.PutBatch(Hash::Zero(), kvs);
    if (!root.ok()) _exit(3);
    if (!mgr.CommitOnBranch("main", *root, "child", "first").ok()) _exit(4);
    auto root2 = tree.PutBatch(*root, {{"extra/key", "extra"}});
    if (!root2.ok()) _exit(5);
    if (!mgr.CommitOnBranch("main", *root2, "child", "second").ok()) _exit(6);
    if (!mgr.CommitOnBranch("dev", *root, "child", "fork").ok()) _exit(7);
    _exit(0);  // crash: no destructors, no stdio flush-at-exit
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(log_path_, &store).ok());
  BranchManager mgr(store);
  EXPECT_FALSE(mgr.Head("main").ok());  // nothing before attach
  ASSERT_TRUE(mgr.AttachRefLog(ref_path_).ok());

  auto main_head = mgr.Head("main");
  ASSERT_TRUE(main_head.ok());
  auto main_commit = mgr.ReadCommit(*main_head);
  ASSERT_TRUE(main_commit.ok());
  EXPECT_EQ(main_commit->message, "second");
  PosTree tree(store);
  auto got = tree.Get(main_commit->root, "extra/key", nullptr);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ(**got, "extra");

  auto dev_head = mgr.Head("dev");
  ASSERT_TRUE(dev_head.ok());
  auto dev_commit = mgr.ReadCommit(*dev_head);
  ASSERT_TRUE(dev_commit.ok());
  std::map<std::string, std::string> expected;
  for (const auto& kv : kvs) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(tree, dev_commit->root), expected);

  // History is intact, not just the tip: the recovered head's parent
  // chain walks back to the first commit.
  auto log = mgr.Log(*main_head);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 2u);
}

TEST_F(RefLogTest, DanglingRecoveredHeadIsSkipped) {
  // Ref log knows a head whose commit never reached the page log (the
  // page log was truncated further back): attach must not resurrect a
  // dangling branch.
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(log_path_, &store).ok());
    std::shared_ptr<RefLog> log;
    ASSERT_TRUE(RefLog::Open(ref_path_, {}, &log).ok());
    ASSERT_TRUE(log->Append("ghost", Sha256::Digest("never stored")).ok());
  }
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(log_path_, &store).ok());
  BranchManager mgr(store);
  ASSERT_TRUE(mgr.AttachRefLog(ref_path_).ok());
  EXPECT_FALSE(mgr.Head("ghost").ok());
}

TEST_F(RefLogTest, DeleteBranchTombstoneSurvivesReattach) {
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(log_path_, &store).ok());
    BranchManager mgr(store);
    ASSERT_TRUE(mgr.AttachRefLog(ref_path_).ok());
    PosTree tree(store);
    auto root = tree.PutBatch(Hash::Zero(), MakeKvs(20));
    ASSERT_TRUE(root.ok());
    ASSERT_TRUE(mgr.CommitOnBranch("gone", *root, "a", "m").ok());
    ASSERT_TRUE(mgr.CommitOnBranch("kept", *root, "a", "m").ok());
    ASSERT_TRUE(mgr.DeleteBranch("gone").ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(log_path_, &store).ok());
  BranchManager mgr(store);
  ASSERT_TRUE(mgr.AttachRefLog(ref_path_).ok());
  EXPECT_FALSE(mgr.Head("gone").ok());
  EXPECT_TRUE(mgr.Head("kept").ok());
}

TEST_F(FileStoreTest, FlushSkipsFsyncWhenNothingAppended) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  ASSERT_TRUE(store->Flush().ok());  // header append -> one fsync
  const uint64_t after_header = store->fsync_count();
  EXPECT_EQ(after_header, 1u);

  // Clean store: repeated commit boundaries must not reach the syscall.
  ASSERT_TRUE(store->Flush().ok());
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->fsync_count(), after_header);

  // One batched commit = exactly one fsync, regardless of batch size.
  store->PutMany(BatchOf(0, 8));
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->fsync_count(), after_header + 1);

  // A fully deduplicated batch appends nothing, so its flush is free too.
  store->PutMany(BatchOf(0, 8));
  ASSERT_TRUE(store->Flush().ok());
  EXPECT_EQ(store->fsync_count(), after_header + 1);
}

}  // namespace
}  // namespace siri
