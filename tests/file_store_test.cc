// Copyright (c) 2026 The siri Authors. MIT license.
//
// FileNodeStore: durability across reopen, crash-truncation recovery, and
// full index operation over a disk-backed store.

#include <gtest/gtest.h>

#include <cstdio>

#include "index/pos/pos_tree.h"
#include "store/file_store.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::Dump;
using testing_util::MakeKvs;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/siri_store_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log";
    std::remove(path_.c_str());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  const Hash h = store->Put("disk-backed page");
  auto got = store->Get(h);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(**got, "disk-backed page");
}

TEST_F(FileStoreTest, SurvivesReopen) {
  Hash root;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    PosTree tree(store);
    auto r = tree.PutBatch(Hash::Zero(), MakeKvs(500));
    ASSERT_TRUE(r.ok());
    root = *r;
    ASSERT_TRUE(store->Flush().ok());
  }  // store closed

  std::shared_ptr<FileNodeStore> reopened;
  ASSERT_TRUE(FileNodeStore::Open(path_, &reopened).ok());
  EXPECT_EQ(reopened->recovered_truncations(), 0u);
  PosTree tree(reopened);
  std::map<std::string, std::string> expected;
  for (const auto& kv : MakeKvs(500)) expected[kv.key] = kv.value;
  EXPECT_EQ(Dump(tree, root), expected);
}

TEST_F(FileStoreTest, RecoversFromTruncatedTail) {
  Hash root;
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    PosTree tree(store);
    auto r = tree.PutBatch(Hash::Zero(), MakeKvs(200));
    ASSERT_TRUE(r.ok());
    root = *r;
    ASSERT_TRUE(store->Flush().ok());
  }

  // Simulate a crash mid-append: chop bytes off the end.
  FILE* f = fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  ASSERT_GT(size, 10);
  ASSERT_EQ(truncate(path_.c_str(), size - 7), 0);
  fclose(f);

  std::shared_ptr<FileNodeStore> recovered;
  ASSERT_TRUE(FileNodeStore::Open(path_, &recovered).ok());
  EXPECT_GT(recovered->recovered_truncations(), 0u);
  // The store still serves every complete page; only the torn tail page is
  // gone. New writes append cleanly after recovery.
  const Hash h = recovered->Put("fresh page after recovery");
  EXPECT_TRUE(recovered->Get(h).ok());
}

TEST_F(FileStoreTest, DeduplicatesAcrossSessions) {
  {
    std::shared_ptr<FileNodeStore> store;
    ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
    store->Put("shared page");
    ASSERT_TRUE(store->Flush().ok());
  }
  std::shared_ptr<FileNodeStore> store;
  ASSERT_TRUE(FileNodeStore::Open(path_, &store).ok());
  const auto before = store->stats();
  store->Put("shared page");  // already on disk
  const auto after = store->stats();
  EXPECT_EQ(after.unique_nodes, before.unique_nodes);
  EXPECT_EQ(after.dup_puts, 1u);
}

TEST_F(FileStoreTest, OpenFailsOnBadDirectory) {
  std::shared_ptr<FileNodeStore> store;
  EXPECT_FALSE(
      FileNodeStore::Open("/no/such/dir/at/all/store.log", &store).ok());
}

}  // namespace
}  // namespace siri
