// Copyright (c) 2026 The siri Authors. MIT license.
//
// Deduplication-ratio / node-sharing metrics (§4.2) including the
// theoretical predictions of §4.2.2: for sequentially evolved versions the
// dedup ratio of the SIRI structures approaches 1/2 - α/2.

#include <gtest/gtest.h>

#include "metrics/dedup.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::IndexKind;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

TEST(DedupStatsTest, DisjointSetsShareNothing) {
  auto store = NewInMemoryNodeStore();
  PageSet a, b;
  a.insert(store->Put("page-a"));
  b.insert(store->Put("page-b"));
  auto stats = ComputeDedupStats(store.get(), {a, b});
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->DeduplicationRatio(), 0.0);
  EXPECT_DOUBLE_EQ(stats->NodeSharingRatio(), 0.0);
}

TEST(DedupStatsTest, IdenticalSetsShareEverything) {
  auto store = NewInMemoryNodeStore();
  PageSet a;
  a.insert(store->Put("page-a"));
  a.insert(store->Put("page-b"));
  auto stats = ComputeDedupStats(store.get(), {a, a});
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->DeduplicationRatio(), 0.5);
  EXPECT_DOUBLE_EQ(stats->NodeSharingRatio(), 0.5);
}

TEST(DedupStatsTest, RatioWeighsBytesNotJustCounts) {
  auto store = NewInMemoryNodeStore();
  const Hash big = store->Put(std::string(1000, 'b'));
  const Hash small_a = store->Put(std::string(10, 'x'));
  const Hash small_b = store->Put(std::string(10, 'y'));
  PageSet a = {big, small_a};
  PageSet b = {big, small_b};
  auto stats = ComputeDedupStats(store.get(), {a, b});
  ASSERT_TRUE(stats.ok());
  // Shared bytes = 1000 of 2020 -> dedup ratio 1000/2020.
  EXPECT_NEAR(stats->DeduplicationRatio(), 1000.0 / 2020.0, 1e-9);
  // Shared nodes = 1 of 4.
  EXPECT_NEAR(stats->NodeSharingRatio(), 0.25, 1e-9);
}

TEST(DedupStatsTest, EmptyInputIsZero) {
  auto store = NewInMemoryNodeStore();
  auto stats = ComputeDedupStats(store.get(), {});
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->DeduplicationRatio(), 0.0);
}

class VersionedDedupTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(VersionedDedupTest, SequentialVersionsApproachHalfMinusAlpha) {
  // §4.2.2 continuous differential analysis: with update ratio α over a
  // *continuous key range* between consecutive versions, η over two
  // adjacent versions ≈ 1/2 - α/2. Verify loosely for α = 0.05.
  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(GetParam(), store);
  auto v1 = index->PutBatch(index->EmptyRoot(), MakeKvs(4000));
  ASSERT_TRUE(v1.ok());
  std::vector<KV> updates;
  for (int i = 2000; i < 2200; ++i) updates.push_back(KV{TKey(i), TVal(i, 1)});
  auto v2 = index->PutBatch(*v1, updates);
  ASSERT_TRUE(v2.ok());

  auto stats = ComputeDedupStatsForRoots(*index, {*v1, *v2});
  ASSERT_TRUE(stats.ok());
  const double eta = stats->DeduplicationRatio();
  // Theory: 0.5 - 0.05/2 = 0.475; allow generous slack for node-level
  // rounding (whole pages invalidate, not records — a 5% record change
  // can dirty a larger page fraction).
  EXPECT_GT(eta, 0.25) << stats->ToString();
  EXPECT_LE(eta, 0.50) << stats->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    SiriIndexes, VersionedDedupTest,
    ::testing::Values(IndexKind::kMpt, IndexKind::kPos),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return testing_util::KindName(info.param);
    });

TEST(MbtDedupTest, SequentialVersionsWithEnoughBuckets) {
  // MBT scatters even contiguous key ranges across buckets (bucket = hash
  // of key), so the α of the theory is α at the *bucket* level: with B
  // much larger than the number of updated records, few buckets dirty and
  // η approaches 1/2 - α/2 just like the others.
  auto store = NewInMemoryNodeStore();
  MbtOptions opt;
  opt.num_buckets = 4096;
  opt.fanout = 16;
  Mbt mbt(store, opt);
  auto v1 = mbt.PutBatch(mbt.EmptyRoot(), MakeKvs(4000));
  ASSERT_TRUE(v1.ok());
  std::vector<KV> updates;
  for (int i = 2000; i < 2050; ++i) updates.push_back(KV{TKey(i), TVal(i, 1)});
  auto v2 = mbt.PutBatch(*v1, updates);
  ASSERT_TRUE(v2.ok());
  auto stats = ComputeDedupStatsForRoots(mbt, {*v1, *v2});
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->DeduplicationRatio(), 0.35) << stats->ToString();
  EXPECT_LE(stats->DeduplicationRatio(), 0.50) << stats->ToString();
}

TEST(FootprintTest, RetainedVersionsCostOnlyDeltas) {
  auto store = NewInMemoryNodeStore();
  auto index = MakeIndex(IndexKind::kPos, store);
  auto v1 = index->PutBatch(index->EmptyRoot(), MakeKvs(3000));
  ASSERT_TRUE(v1.ok());
  auto fp1 = ComputeFootprint(*index, {*v1});
  ASSERT_TRUE(fp1.ok());

  auto v2 = index->Put(*v1, TKey(1), "new");
  ASSERT_TRUE(v2.ok());
  auto fp_both = ComputeFootprint(*index, {*v1, *v2});
  ASSERT_TRUE(fp_both.ok());

  // Retaining both versions costs only slightly more than one.
  EXPECT_LT(fp_both->bytes, static_cast<uint64_t>(fp1->bytes * 1.05));
  EXPECT_GE(fp_both->bytes, fp1->bytes);
}

TEST(FootprintTest, StringFormatting) {
  DedupStats stats;
  stats.union_nodes = 10;
  stats.union_bytes = 1000;
  stats.total_nodes = 20;
  stats.total_bytes = 4000;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("dedup=0.75"), std::string::npos);
  EXPECT_NE(s.find("sharing=0.5"), std::string::npos);
}

}  // namespace
}  // namespace siri
