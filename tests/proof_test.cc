// Copyright (c) 2026 The siri Authors. MIT license.
//
// Merkle proofs across all structures: existence and non-existence proofs,
// verification against the root digest, and rejection of tampered proofs —
// the tamper-evidence property of §2.3.

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tests/test_util.h"

namespace siri {
namespace {

using testing_util::AllKinds;
using testing_util::IndexKind;
using testing_util::KindName;
using testing_util::MakeIndex;
using testing_util::MakeKvs;
using testing_util::TKey;
using testing_util::TVal;

class ProofTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  void SetUp() override {
    store_ = NewInMemoryNodeStore();
    index_ = MakeIndex(GetParam(), store_);
    auto root = index_->PutBatch(index_->EmptyRoot(), MakeKvs(500));
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  std::shared_ptr<InMemoryNodeStore> store_;
  std::unique_ptr<ImmutableIndex> index_;
  Hash root_;
};

TEST_P(ProofTest, ExistenceProofVerifies) {
  auto proof = index_->GetProof(root_, TKey(123));
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(proof->value.has_value());
  EXPECT_EQ(*proof->value, TVal(123));
  EXPECT_TRUE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, NonExistenceProofVerifies) {
  auto proof = index_->GetProof(root_, "absent-key");
  ASSERT_TRUE(proof.ok());
  EXPECT_FALSE(proof->value.has_value());
  EXPECT_TRUE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, ProofAgainstWrongRootFails) {
  auto proof = index_->GetProof(root_, TKey(1));
  ASSERT_TRUE(proof.ok());
  auto other = index_->Put(root_, TKey(1), "different");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(index_->VerifyProof(*proof, *other));
}

TEST_P(ProofTest, TamperedValueClaimFails) {
  auto proof = index_->GetProof(root_, TKey(42));
  ASSERT_TRUE(proof.ok());
  proof->value = "forged-value";
  EXPECT_FALSE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, TamperedNodeBytesFail) {
  auto proof = index_->GetProof(root_, TKey(42));
  ASSERT_TRUE(proof.ok());
  ASSERT_FALSE(proof->nodes.empty());
  // Flip one byte in the deepest node: its digest no longer matches the
  // reference in its parent, so the lookup path breaks.
  proof->nodes.back()[proof->nodes.back().size() / 2] ^= 0x01;
  EXPECT_FALSE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, TruncatedProofFails) {
  auto proof = index_->GetProof(root_, TKey(42));
  ASSERT_TRUE(proof.ok());
  ASSERT_GT(proof->nodes.size(), 1u);
  proof->nodes.pop_back();
  EXPECT_FALSE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, ForgedAbsenceClaimFails) {
  // Take a valid existence proof and claim absence: verification re-runs
  // the lookup, finds the value, and rejects the mismatch.
  auto proof = index_->GetProof(root_, TKey(42));
  ASSERT_TRUE(proof.ok());
  proof->value.reset();
  EXPECT_FALSE(index_->VerifyProof(*proof, root_));
}

TEST_P(ProofTest, ProofIsSmallComparedToTree) {
  auto proof = index_->GetProof(root_, TKey(99));
  ASSERT_TRUE(proof.ok());
  PageSet pages;
  ASSERT_TRUE(index_->CollectPages(root_, &pages).ok());
  uint64_t tree_bytes = 0;
  for (const Hash& h : pages) tree_bytes += *store_->SizeOf(h);
  EXPECT_LT(proof->ByteSize(), tree_bytes / 2);
  EXPECT_GT(proof->ByteSize(), 0u);
}

TEST_P(ProofTest, ProofSurvivesSerializationBoundary) {
  // A proof is plain bytes: rebuilding the struct from copies must verify.
  auto proof = index_->GetProof(root_, TKey(7));
  ASSERT_TRUE(proof.ok());
  Proof copy;
  copy.key = proof->key;
  copy.value = proof->value;
  for (const auto& n : proof->nodes) copy.nodes.push_back(n);
  EXPECT_TRUE(index_->VerifyProof(copy, root_));
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, ProofTest, ::testing::ValuesIn(AllKinds()),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return KindName(info.param);
    });

TEST(ProofNodeStoreTest, ServesOnlyProofNodes) {
  Proof proof;
  proof.nodes.push_back("node-one");
  proof.nodes.push_back("node-two");
  ProofNodeStore store(proof);
  EXPECT_TRUE(store.Get(Sha256::Digest("node-one")).ok());
  EXPECT_TRUE(store.Get(Sha256::Digest("node-two")).ok());
  EXPECT_FALSE(store.Get(Sha256::Digest("node-three")).ok());
}

TEST(ProofNodeStoreTest, ByteSizeSumsComponents) {
  Proof proof;
  proof.key = "abc";
  proof.value = "defg";
  proof.nodes.push_back(std::string(100, 'n'));
  EXPECT_EQ(proof.ByteSize(), 3u + 4u + 100u);
}

}  // namespace
}  // namespace siri
