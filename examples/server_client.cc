// Copyright (c) 2026 The siri Authors. MIT license.
//
// Client/server example: the same ForkbaseClientStore + index code runs
// embedded (in-process servlet, simulated round trips) or against a real
// server over TCP — the only line that changes is which Transport you
// hand the client store.
//
// This example starts a SiriServer in-process on an ephemeral loopback
// port so it is self-contained; in a real deployment the server side is
// the `siri-server` daemon:
//
//   ./build/siri-server --port=4433 --data=/var/lib/siri
//
// and the client half below connects to it unchanged.
//
// Build & run:  ./build/examples/server_client

#include <cstdio>
#include <memory>
#include <optional>

#include "index/pos/pos_tree.h"
#include "net/server.h"
#include "net/socket_transport.h"
#include "store/node_store.h"
#include "system/forkbase.h"
#include "version/commit.h"

using namespace siri;

int main() {
  // --- Server half (what `siri-server` does for you) -------------------
  // One servlet = one node store + one branch table + one group-commit
  // combiner, shared by every connected client process. Each structure
  // clients will commit must be registered server-side, with the same
  // construction geometry the clients use.
  auto server_store = NewInMemoryNodeStore();
  ForkbaseServlet servlet(server_store);
  servlet.RegisterIndex(std::make_unique<PosTree>(server_store));

  net::SiriServer server(&servlet);  // ServerOptions{}: group-fsync window ON
  SIRI_CHECK_OK(server.Listen(0));  // 0 = pick an ephemeral port
  SIRI_CHECK_OK(server.Start());
  printf("siri server listening on 127.0.0.1:%d\n", server.port());

  {
    // --- Client half (a separate process in real deployments) ----------
    // Connect, wrap the transport in the caching client store, and put an
    // index over it: from here on the code is identical to embedded use.
    std::shared_ptr<net::SocketTransport> transport;
    SIRI_CHECK_OK(
        net::SocketTransport::Connect("127.0.0.1", server.port(), &transport));
    auto client_store =
        std::make_shared<ForkbaseClientStore>(transport, /*cache_bytes=*/8 << 20);
    PosTree index(client_store);

    // Commit through the wire: stage a batch (one PutMany RPC carries the
    // whole dirty path), then publish onto the shared branch. The server
    // merges publishes through its registered "pos" index, so concurrent
    // committers from other processes would auto-merge, not clobber.
    Hash root = *index.PutBatch(Hash::Zero(), {{"config/mode", "dev"},
                                               {"data/x", "1"},
                                               {"data/y", "2"}});
    SIRI_CHECK_OK(client_store->Flush());
    net::PublishRequest pub;
    pub.structure = "pos";
    pub.branch = "main";
    pub.new_root = root;
    pub.author = "alice";
    pub.message = "initial import";
    auto first = *transport->Publish(pub);
    printf("published commit %.12s, head %.12s\n",
           first.commit.ToHex().c_str(), first.head.ToHex().c_str());

    // Second commit builds on the acked head, exactly like a fresh client
    // process would: Head RPC, fetch + decode the commit, extend its root.
    Hash head = *transport->Head("main");
    Commit at_head = *Commit::Decode(**client_store->Get(head));
    Hash root2 = *index.Put(at_head.root, "data/x", "42");
    SIRI_CHECK_OK(client_store->Flush());
    pub.new_root = root2;
    pub.message = "bump x";
    pub.expected_head = head;  // OCC: detect concurrent head movement
    auto second = *transport->Publish(pub);

    // Reads go through the client cache; only misses cross the wire.
    printf("data/x @ head = %s (cache hit ratio %.2f)\n",
           index.Get(Commit::Decode(**client_store->Get(second.head))->root,
                     "data/x", nullptr)
               ->value()
               .c_str(),
           client_store->remote_stats().HitRatio());

    // Unlike the embedded transport's simulated round trips, every cost
    // here is measured: real serialized bytes, real send/recv syscalls.
    const net::Transport::Stats s = transport->stats();
    printf("wire costs: %llu RPCs, %llu bytes sent, %llu received, "
           "%llu syscalls\n",
           static_cast<unsigned long long>(s.rpcs),
           static_cast<unsigned long long>(s.bytes_sent),
           static_cast<unsigned long long>(s.bytes_received),
           static_cast<unsigned long long>(s.syscalls));
  }

  server.Stop();
  const net::SiriServer::Stats ss = server.stats();
  printf("server served %llu requests on %llu connection(s), "
         "%llu frame errors\n",
         static_cast<unsigned long long>(ss.requests),
         static_cast<unsigned long long>(ss.connections),
         static_cast<unsigned long long>(ss.frame_errors));
  return 0;
}
