// Copyright (c) 2026 The siri Authors. MIT license.
//
// Quickstart: the whole public API in one sitting — create an index over a
// content-addressed store, write a few versions, read any version, prove a
// record against a 32-byte digest, diff and merge branches.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "index/pos/pos_tree.h"
#include "metrics/dedup.h"
#include "store/node_store.h"

using namespace siri;

int main() {
  // 1. Every index node lives in a content-addressed store: identical
  //    pages are stored once, whoever writes them.
  auto store = NewInMemoryNodeStore();
  PosTree index(store);  // the paper's favored structure; Mpt/Mbt/MvmbTree
                         // are drop-in alternatives behind ImmutableIndex.

  // 2. Versions are root digests. Updates return a NEW version; the old
  //    one remains readable forever (node-level copy-on-write).
  Hash v1 = *index.PutBatch(Hash::Zero(), {{"alice", "100"},
                                           {"bob", "250"},
                                           {"carol", "75"}});
  Hash v2 = *index.Put(v1, "alice", "40");

  printf("v1 digest: %s\n", v1.ToHex().c_str());
  printf("v2 digest: %s\n", v2.ToHex().c_str());
  printf("alice@v1 = %s, alice@v2 = %s\n",
         index.Get(v1, "alice", nullptr)->value().c_str(),
         index.Get(v2, "alice", nullptr)->value().c_str());

  // 3. Tamper evidence: a proof carries the lookup path; anyone holding
  //    only the version digest can verify it.
  Proof proof = *index.GetProof(v2, "bob");
  printf("proof for bob: %zu nodes, %llu bytes, verifies=%s\n",
         proof.nodes.size(),
         static_cast<unsigned long long>(proof.ByteSize()),
         index.VerifyProof(proof, v2) ? "true" : "false");
  proof.value = "999999";  // forge the claimed balance
  printf("forged proof verifies=%s\n",
         index.VerifyProof(proof, v2) ? "true" : "false");

  // 4. Diff two versions: record-level changes, computed by skipping every
  //    shared subtree.
  DiffResult changes = *index.Diff(v1, v2);
  for (const DiffEntry& e : changes) {
    printf("diff: %s: %s -> %s\n", e.key.c_str(),
           e.left.value_or("(none)").c_str(),
           e.right.value_or("(none)").c_str());
  }

  // 5. Branch and merge: two users extend v2 independently, then merge.
  Hash ours = *index.Put(v2, "dave", "10");
  Hash theirs = *index.Put(v2, "erin", "20");
  Hash merged = *index.Merge3(ours, theirs, v2);
  printf("merged has dave=%s erin=%s\n",
         index.Get(merged, "dave", nullptr)->value().c_str(),
         index.Get(merged, "erin", nullptr)->value().c_str());

  // 6. Deduplication in action: five versions cost barely more than one.
  auto fp_one = *ComputeFootprint(index, {v1});
  auto fp_all = *ComputeFootprint(index, {v1, v2, ours, theirs, merged});
  printf("1 version: %llu bytes; 5 versions: %llu bytes\n",
         static_cast<unsigned long long>(fp_one.bytes),
         static_cast<unsigned long long>(fp_all.bytes));
  return 0;
}
