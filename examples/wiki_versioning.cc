// Copyright (c) 2026 The siri Authors. MIT license.
//
// Wiki versioning example (the paper's §5.1.2 scenario): a corpus of page
// abstracts evolves over many revisions; every revision stays queryable,
// history costs only the deltas, and any two revisions diff in
// milliseconds. Also shows picking a structure per workload: compare the
// same pipeline over POS-Tree and MPT.
//
// Build & run:  ./build/examples/wiki_versioning

#include <cstdio>

#include "index/mpt/mpt.h"
#include "index/pos/pos_tree.h"
#include "metrics/dedup.h"
#include "common/timer.h"
#include "workload/datasets.h"

using namespace siri;

namespace {

void RunPipeline(const char* label, ImmutableIndex* index) {
  WikiDataset wiki(10000);
  const int kRevisions = 12;

  // Initial dump.
  auto initial = wiki.InitialRecords();
  Hash head = index->EmptyRoot();
  for (size_t i = 0; i < initial.size(); i += 2000) {
    std::vector<KV> batch(initial.begin() + i,
                          initial.begin() +
                              std::min(i + 2000, initial.size()));
    head = *index->PutBatch(head, batch);
  }

  // Monthly revisions: 2% of pages get edited each time.
  std::vector<Hash> revisions{head};
  for (int rev = 1; rev <= kRevisions; ++rev) {
    head = *index->PutBatch(head, wiki.VersionEdits(rev, 0.02));
    revisions.push_back(head);
  }

  // Any past revision remains directly readable — no delta replay.
  const std::string some_page = wiki.KeyOf(4711);
  auto then = index->Get(revisions[1], some_page, nullptr);
  auto now = index->Get(revisions.back(), some_page, nullptr);
  SIRI_CHECK(then.ok() && now.ok());

  // Cost of keeping all revisions vs one.
  auto fp_head = *ComputeFootprint(*index, {revisions.back()});
  auto fp_all = *ComputeFootprint(*index, revisions);

  // Fast diff between distant revisions.
  Timer t;
  auto changes = *index->Diff(revisions[2], revisions[10]);
  const double diff_ms = t.ElapsedMillis();

  printf("%-5s head=%.12s...  1-rev=%.1fMB  %d-revs=%.1fMB  "
         "diff(rev2,rev10)=%zu records in %.2fms\n",
         label, revisions.back().ToHex().c_str(), fp_head.bytes / 1e6,
         kRevisions + 1, fp_all.bytes / 1e6, changes.size(), diff_ms);
}

}  // namespace

int main() {
  printf("versioned wiki corpus: 10000 pages, 12 revisions of 2%% edits\n");
  {
    auto store = NewInMemoryNodeStore();
    PosTree pos(store);
    RunPipeline("pos", &pos);
  }
  {
    auto store = NewInMemoryNodeStore();
    Mpt mpt(store);
    RunPipeline("mpt", &mpt);
  }
  printf("note: identical content, different structures — POS keeps the\n"
         "tree shallow for long URL keys, which the paper's Figure 7a/15\n"
         "measurements reward.\n");
  return 0;
}
