// Copyright (c) 2026 The siri Authors. MIT license.
//
// Forkable application example: named branches with a tamper-evident
// commit DAG (the Forkbase model, §2.1), a durable file-backed page store
// that survives restarts, and version packs that ship only the pages the
// receiver is missing (the deduplicated transfer of Figure 1).
//
// Build & run:  ./build/examples/forkable_store

#include <cstdio>

#include "index/pos/pos_tree.h"
#include "store/file_store.h"
#include "version/commit.h"
#include "version/transfer.h"

using namespace siri;

int main() {
  const std::string log_path = "/tmp/siri_forkable_example.log";
  std::remove(log_path.c_str());

  Hash main_head_root;
  {
    // --- Session 1: build some history on a durable store ---
    std::shared_ptr<FileNodeStore> disk;
    SIRI_CHECK_OK(FileNodeStore::Open(log_path, &disk));
    PosTree index(disk);
    BranchManager branches(disk);

    Hash root = *index.PutBatch(Hash::Zero(), {{"config/mode", "dev"},
                                               {"data/x", "1"},
                                               {"data/y", "2"}});
    Hash c1 = *branches.CommitOnBranch("main", root, "alice", "initial import");

    root = *index.Put(root, "data/z", "3");
    Hash c2 = *branches.CommitOnBranch("main", root, "alice", "add z");

    // Fork a feature branch and diverge.
    SIRI_CHECK_OK(branches.CreateBranch("feature", c2));
    Hash feat_root = *index.Put(root, "config/mode", "prod");
    Hash c3 =
        *branches.CommitOnBranch("feature", feat_root, "bob", "flip to prod");

    // Merge feature into main using the commit DAG's merge base.
    Hash base_commit = *branches.MergeBase(*branches.Head("main"), c3);
    Commit base = *branches.ReadCommit(base_commit);
    Commit ours = *branches.ReadCommit(*branches.Head("main"));
    Commit theirs = *branches.ReadCommit(c3);
    Hash merged_root = *index.Merge3(ours.root, theirs.root, base.root);
    Hash mc = *branches.CommitOnBranch("main", merged_root, "alice",
                                       "merge feature");

    auto log = *branches.Log(mc);
    printf("history of main (%zu commits):\n", log.size());
    for (const auto& [h, c] : log) {
      printf("  %.12s  seq=%llu  %-8s %s\n", h.ToHex().c_str(),
             static_cast<unsigned long long>(c.sequence), c.author.c_str(),
             c.message.c_str());
    }
    main_head_root = merged_root;
    SIRI_CHECK_OK(disk->Flush());
    (void)c1;
  }

  {
    // --- Session 2: reopen the log; all versions are still there ---
    std::shared_ptr<FileNodeStore> disk;
    SIRI_CHECK_OK(FileNodeStore::Open(log_path, &disk));
    PosTree index(disk);
    auto mode = *index.Get(main_head_root, "config/mode", nullptr);
    printf("after restart: config/mode = %s (recovered %llu pages)\n",
           mode->c_str(),
           static_cast<unsigned long long>(disk->stats().unique_nodes));

    // Ship the head version to a fresh replica: full pack vs delta pack.
    auto replica_store = NewInMemoryNodeStore();
    auto full = *PackVersions(index, {main_head_root});
    SIRI_CHECK_OK(UnpackVersions(full, replica_store.get()));
    PosTree replica(replica_store);
    auto x = *replica.Get(main_head_root, "data/x", nullptr);
    printf("replica bootstrapped with %llu bytes; data/x = %s\n",
           static_cast<unsigned long long>(full.ByteSize()), x->c_str());

    // A later update ships as a delta: only the changed pages travel.
    Hash next = *index.Put(main_head_root, "data/x", "42");
    auto delta = *PackVersions(index, {next}, /*have=*/{main_head_root});
    SIRI_CHECK_OK(UnpackVersions(delta, replica_store.get()));
    printf("update shipped as %llu-byte delta (full would be %llu); "
           "replica reads data/x = %s\n",
           static_cast<unsigned long long>(delta.ByteSize()),
           static_cast<unsigned long long>(
               PackVersions(index, {next})->ByteSize()),
           replica.Get(next, "data/x", nullptr)->value().c_str());
  }

  std::remove(log_path.c_str());
  return 0;
}
