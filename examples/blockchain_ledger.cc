// Copyright (c) 2026 The siri Authors. MIT license.
//
// Blockchain ledger example (the paper's Ethereum scenario, §5.1.3): each
// block gets a per-block transaction index whose root digest is the
// block's tamper-evidence commitment; a light client verifies a
// transaction against nothing but that 32-byte digest.
//
// Build & run:  ./build/examples/blockchain_ledger

#include <cstdio>

#include "index/mpt/mpt.h"
#include "system/ledger.h"
#include "workload/datasets.h"

using namespace siri;

int main() {
  auto store = NewInMemoryNodeStore();
  // Ethereum uses an MPT for its transaction trie; swap in PosTree to see
  // why the paper recommends it for write-heavy block building.
  Mpt mpt(store);
  Ledger ledger(&mpt);

  EthDataset eth;
  const uint64_t kBlocks = 10;
  const uint64_t kTxsPerBlock = 100;

  printf("building %llu blocks of %llu transactions...\n",
         static_cast<unsigned long long>(kBlocks),
         static_cast<unsigned long long>(kTxsPerBlock));
  for (uint64_t b = 0; b < kBlocks; ++b) {
    Hash root = *ledger.AppendBlock(eth.BlockRecords(b, kTxsPerBlock));
    if (b < 3) printf("block %llu root: %s\n",
                      static_cast<unsigned long long>(b),
                      root.ToHex().c_str());
  }

  // Full-node lookup: scan the chain for the block holding the tx.
  auto txs = eth.BlockRecords(7, kTxsPerBlock);
  const std::string& tx_hash = txs[42].key;
  uint64_t scanned = 0;
  auto value = *ledger.Lookup(tx_hash, &scanned);
  printf("tx %.16s... found=%s after scanning %llu blocks, %zu bytes\n",
         tx_hash.c_str(), value ? "yes" : "no",
         static_cast<unsigned long long>(scanned),
         value ? value->size() : 0);

  // Light-client verification: the full node hands over a proof; the
  // client checks it against the block root it already trusts.
  const Hash block_root = ledger.block_roots()[7];
  Proof proof = *mpt.GetProof(block_root, tx_hash);
  printf("proof: %zu nodes, %llu bytes — verifies=%s\n", proof.nodes.size(),
         static_cast<unsigned long long>(proof.ByteSize()),
         mpt.VerifyProof(proof, block_root) ? "true" : "false");

  // A tampered transaction is detected immediately.
  Proof forged = proof;
  if (forged.value) (*forged.value)[0] ^= 0x01;
  printf("tampered tx verifies=%s\n",
         mpt.VerifyProof(forged, block_root) ? "true" : "false");

  // Deduplication across blocks: identical sub-pages (e.g. common RLP
  // prefixes) are stored once for the whole chain.
  const auto stats = store->stats();
  printf("store: %llu unique nodes, %.2f MB (dedup saved %llu duplicate "
         "puts)\n",
         static_cast<unsigned long long>(stats.unique_nodes),
         static_cast<double>(stats.unique_bytes) / 1e6,
         static_cast<unsigned long long>(stats.dup_puts));
  return 0;
}
