// Copyright (c) 2026 The siri Authors. MIT license.
//
// Collaborative analytics example (the paper's §5.4.2 scenario): several
// teams fork a shared dataset, clean and extend their copies
// independently, and the storage deduplicates whatever remains identical —
// then the branches are merged back with conflict detection.
//
// Build & run:  ./build/examples/collaborative_analytics

#include <cstdio>

#include "index/pos/pos_tree.h"
#include "metrics/dedup.h"
#include "workload/ycsb.h"

using namespace siri;

int main() {
  auto store = NewInMemoryNodeStore();
  PosTree index(store);

  // A curated base dataset everyone starts from.
  YcsbGenerator gen(42);
  auto base_records = gen.GenerateRecords(20000, "curated");
  Hash base = Hash::Zero();
  for (size_t i = 0; i < base_records.size(); i += 4000) {
    std::vector<KV> batch(base_records.begin() + i,
                          base_records.begin() +
                              std::min(i + 4000, base_records.size()));
    base = *index.PutBatch(base, batch);
  }
  printf("base dataset: 20000 records, digest %.16s...\n",
         base.ToHex().c_str());

  // Team A normalizes a column (touches 1% of records).
  std::vector<KV> team_a_edits;
  for (int i = 0; i < 200; ++i) {
    team_a_edits.push_back(
        KV{base_records[i * 100].key, "normalized:" + std::to_string(i)});
  }
  Hash branch_a = *index.PutBatch(base, team_a_edits);

  // Team B appends its own measurements under its namespace.
  std::vector<KV> team_b_rows;
  for (int i = 0; i < 500; ++i) {
    team_b_rows.push_back(KV{"teamB/sample" + std::to_string(i),
                             gen.ValueOf(i, 0, "teamB")});
  }
  Hash branch_b = *index.PutBatch(base, team_b_rows);

  // Storage: three full datasets, a fraction of the space.
  auto fp_base = *ComputeFootprint(index, {base});
  auto fp_all = *ComputeFootprint(index, {base, branch_a, branch_b});
  auto stats = *ComputeDedupStatsForRoots(index, {base, branch_a, branch_b});
  printf("base: %.2f MB; base+2 branches: %.2f MB (dedup ratio %.3f, "
         "sharing %.3f)\n",
         fp_base.bytes / 1e6, fp_all.bytes / 1e6, stats.DeduplicationRatio(),
         stats.NodeSharingRatio());

  // What exactly did team A change? Diff against the common base.
  auto changes = *index.Diff(base, branch_a);
  printf("team A changed %zu records\n", changes.size());

  // Merge B's additions into A's cleanup — no overlap, no conflicts.
  Hash merged = *index.Merge3(branch_a, branch_b, base);
  printf("merged dataset has %llu records\n",
         static_cast<unsigned long long>(*index.Count(merged)));

  // Conflicting edits are surfaced, not silently overwritten.
  Hash conflict_a = *index.Put(base, base_records[0].key, "team-a-value");
  Hash conflict_b = *index.Put(base, base_records[0].key, "team-b-value");
  auto bad = index.Merge3(conflict_a, conflict_b, base);
  printf("conflicting merge: %s\n", bad.status().ToString().c_str());

  // ... and resolved by a strategy when the user supplies one.
  Hash resolved = *index.Merge3(
      conflict_a, conflict_b, base,
      [](const std::string&, const std::optional<std::string>& ours,
         const std::optional<std::string>& theirs) {
        return std::optional<std::string>(ours.value_or("<deleted>") + "|" +
                                          theirs.value_or("<deleted>"));
      });
  printf("resolved value: %s\n",
         index.Get(resolved, base_records[0].key, nullptr)->value().c_str());
  return 0;
}
