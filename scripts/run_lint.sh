#!/usr/bin/env bash
# Copyright (c) 2026 The siri Authors. MIT license.
#
# Static-analysis gate. Two layers, each used when its toolchain exists:
#
#   1. clang-tidy over every TU in src/ (checks from .clang-tidy,
#      warnings-as-errors), against a compile_commands.json produced by a
#      dedicated configure.
#   2. A thread-safety/[[nodiscard]] enforcement build: the library +
#      tests + benches compiled with SIRI_THREAD_SAFETY=ON, which under
#      Clang promotes -Wthread-safety to errors and under GCC still
#      promotes -Werror=unused-result — so a dropped Status/CasResult
#      fails this script on either toolchain.
#
# Exits non-zero on the first violation; exits 0 on a clean tree.
#
# Usage:
#   scripts/run_lint.sh [-b BUILD_DIR]
#     -b  build directory for the lint configure (default: build-lint)

set -u

BUILD_DIR=build-lint
while getopts "b:" opt; do
  case "$opt" in
    b) BUILD_DIR=$OPTARG ;;
    *) echo "usage: $0 [-b build_dir]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
if [ $# -gt 0 ]; then
  echo "error: unrecognized argument(s): $*" >&2
  echo "usage: $0 [-b build_dir]" >&2
  exit 2
fi

cd "$(dirname "$0")/.."

# Prefer Clang when installed: it is the toolchain the thread-safety
# analysis actually runs on. Plain GCC still enforces [[nodiscard]].
CXX_FOR_LINT=${CXX:-}
if [ -z "$CXX_FOR_LINT" ]; then
  if command -v clang++ >/dev/null 2>&1; then
    CXX_FOR_LINT=clang++
  else
    CXX_FOR_LINT=c++
  fi
fi

echo "== configure ($CXX_FOR_LINT, SIRI_THREAD_SAFETY=ON)" >&2
mkdir -p "$BUILD_DIR"  # logs land in the build dir, which must exist first
cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_CXX_COMPILER="$CXX_FOR_LINT" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DSIRI_THREAD_SAFETY=ON \
      > "$BUILD_DIR/configure.log" 2>&1 || {
  cat "$BUILD_DIR/configure.log" >&2
  echo "error: lint configure failed" >&2
  exit 1
}

# Layer 1: clang-tidy, when available (the container CI image has it; a
# bare GCC box skips to layer 2 rather than failing the gate).
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy over src/" >&2
  # xargs -P parallelizes across TUs; any nonzero tidy exit fails the
  # whole xargs (exit 123), which fails the script.
  if ! find src -name '*.cc' -print0 \
       | xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet; then
    echo "error: clang-tidy found violations" >&2
    exit 1
  fi
else
  echo "== clang-tidy not installed — skipping tidy layer" >&2
fi

# Layer 2: the enforcement build. -Werror=thread-safety* under Clang,
# -Werror=unused-result everywhere.
echo "== enforcement build (thread-safety + [[nodiscard]] as errors)" >&2
if ! cmake --build "$BUILD_DIR" -j "$(nproc)" 2> "$BUILD_DIR/build.log"; then
  cat "$BUILD_DIR/build.log" >&2
  echo "error: enforcement build failed" >&2
  exit 1
fi

echo "lint clean" >&2
