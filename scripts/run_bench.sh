#!/usr/bin/env bash
# Copyright (c) 2026 The siri Authors. MIT license.
#
# Runs a fast subset of the per-figure benchmark binaries and emits a
# machine-readable perf trajectory file (BENCH_baseline.json by default).
# Future scaling PRs compare their numbers against this baseline.
#
# Usage:
#   scripts/run_bench.sh [-b BUILD_DIR] [-o OUT_JSON] [-a]
#     -b  build directory containing bench/ binaries (default: build)
#     -o  output JSON path (default: BENCH_baseline.json)
#     -a  run ALL bench binaries instead of the fast subset
#
# Per-bench stdout is kept under BENCH_out/<name>.txt next to the JSON.

set -u

BUILD_DIR=build
OUT=BENCH_baseline.json
ALL=0
while getopts "b:o:a" opt; do
  case "$opt" in
    b) BUILD_DIR=$OPTARG ;;
    o) OUT=$OPTARG ;;
    a) ALL=1 ;;
    *) echo "usage: $0 [-b build_dir] [-o out.json] [-a]" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
if [ $# -gt 0 ]; then
  # A stray word here is almost always a typo'd option (e.g. `-all`): fail
  # fast instead of silently recording a baseline the caller did not ask
  # for. The bench binaries reject unknown --flags the same way.
  echo "error: unrecognized argument(s): $*" >&2
  echo "usage: $0 [-b build_dir] [-o out.json] [-a]" >&2
  exit 2
fi

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found — build first:" >&2
  echo "  cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

# The fast subset keeps the whole run around a minute on one core while
# still touching every structure (throughput, diff, height, MBT breakdown,
# parameter sweep) plus the multi-client read-scaling report.
FAST_SUBSET="fig01_motivation fig09_tree_height fig13_mbt_breakdown tab03_parameters fig08_diff fig06_threads fig06_write_scaling fig06_branch_commits fig06_group_commit fig06_socket fig06_socket_pipeline"

if [ "$ALL" -eq 1 ]; then
  BENCHES=$(cd "$BENCH_DIR" && ls)
else
  BENCHES=$FAST_SUBSET
fi

# Pseudo-benches: logical names that map to a binary plus arguments.
# fig06_threads = the fig06 multi-client read section only, swept at
# 1/2/4/8 client threads (aggregate kops/s + per-structure hit ratios).
# fig06_write_scaling = the fig06 multi-client write section only, swept
# at 1/2/4/8 writer threads (aggregate write kops/s + upload RPCs/commit).
# fig06_branch_commits = the fig06 multi-writer-same-branch contention
# section only: K writers racing one branch via head CAS + merge retry
# (aggregate commits/s + lost head races per commit).
# fig06_group_commit = the group-commit publish pipeline sweep: the same
# contended-branch regime with the combining commit queue off vs on
# (aggregate commits/s, retries/commit, commits-per-fsync).
# fig06_socket = the same group-commit regime through the REAL boundary:
# loopback TCP to an in-process siri-server over a file-backed store
# (measured commits/s, bytes/RPC, syscalls/commit, commits-per-fsync —
# not comparable with the slept-RTT in-process rows, hence the transport
# field recorded per entry).
# fig06_socket_pipeline = the pipelined wire boundary isolated: writers
# sharing ONE connection, pipelining depth swept 1 vs 8 plus a cache-push
# row (commits/s, bytes/RPC, syscalls/commit, pushed nodes/commit — the
# depth-1 row is the serialized pre-pipelining baseline).
bench_cmdline() {
  case "$1" in
    fig06_threads)       echo "fig06_ycsb_throughput --threads=1,2,4,8 --threads-only" ;;
    fig06_write_scaling) echo "fig06_ycsb_throughput --write-threads=1,2,4,8 --write-scaling-only" ;;
    fig06_branch_commits) echo "fig06_ycsb_throughput --write-threads=1,2,4 --branch-commits-only" ;;
    fig06_group_commit)  echo "fig06_ycsb_throughput --write-threads=1,2,4,8 --group-commit-only" ;;
    fig06_socket)        echo "fig06_ycsb_throughput --write-threads=1,2,4 --transport=socket" ;;
    fig06_socket_pipeline) echo "fig06_ycsb_throughput --write-threads=8 --transport=socket --pipeline" ;;
    *)                   echo "$1" ;;
  esac
}

# Client/writer thread counts a bench sweeps, recorded in its JSON entry
# so trajectory comparisons know which rows are multi-threaded.
bench_threads() {
  case "$1" in
    fig06_threads)       echo "1,2,4,8" ;;
    fig06_write_scaling) echo "1,2,4,8" ;;
    fig06_branch_commits) echo "1,2,4" ;;
    fig06_group_commit)  echo "1,2,4,8" ;;
    fig06_socket)        echo "1,2,4" ;;
    fig06_socket_pipeline) echo "8" ;;
    *)                   echo "" ;;
  esac
}

# Which transport an entry's numbers crossed: "socket" rows measure real
# loopback TCP; everything else simulates its round trips in-process.
# Kept in the JSON so a trajectory diff can never compare across regimes.
bench_transport() {
  case "$1" in
    fig06_socket)          echo "socket" ;;
    fig06_socket_pipeline) echo "socket" ;;
    *)                     echo "inproc" ;;
  esac
}

OUT_DIR=$(dirname "$OUT")/BENCH_out
mkdir -p "$OUT_DIR"

TIMEOUT_SECS=${BENCH_TIMEOUT:-600}
GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
STAMP=$(date -u +%Y-%m-%dT%H:%M:%SZ)

{
  echo "{"
  echo "  \"schema\": \"siri-bench-v1\","
  echo "  \"timestamp\": \"$STAMP\","
  echo "  \"git_rev\": \"$GIT_REV\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"results\": ["
} > "$OUT"

first=1
failed=0
for b in $BENCHES; do
  set -- $(bench_cmdline "$b")
  bin="$BENCH_DIR/$1"
  shift
  [ -x "$bin" ] || continue
  echo "== $b" >&2
  start=$(date +%s)
  if timeout "$TIMEOUT_SECS" "$bin" "$@" > "$OUT_DIR/$b.txt" 2>&1; then
    status=ok
  else
    status=failed
    failed=1
  fi
  secs=$(( $(date +%s) - start ))
  [ $first -eq 1 ] || echo "    ," >> "$OUT"
  first=0
  threads=$(bench_threads "$b")
  # Group-commit trajectory fields: the bench emits machine-readable
  # `#json ... gc=on commits_per_fsync=X ... window_us=Y` lines; record
  # the best (highest-thread-count) commits-per-fsync and the publish
  # window so the BENCH trajectory captures the group-commit win.
  cpf=$(grep -o 'gc=on.*commits_per_fsync=[0-9.]*' "$OUT_DIR/$b.txt" 2>/dev/null \
        | grep -o 'commits_per_fsync=[0-9.]*' | cut -d= -f2 | sort -g | tail -1)
  window=$(grep -o 'window_us=[0-9]*' "$OUT_DIR/$b.txt" 2>/dev/null \
           | head -1 | cut -d= -f2)
  # Socket-only measured-cost fields (the `#json ... transport=socket`
  # lines): real serialized bytes per RPC and syscalls per commit.
  bpr=$(grep -o 'transport=socket.*bytes_per_rpc=[0-9.]*' "$OUT_DIR/$b.txt" 2>/dev/null \
        | grep -o 'bytes_per_rpc=[0-9.]*' | cut -d= -f2 | sort -g | tail -1)
  spc=$(grep -o 'transport=socket.*syscalls_per_commit=[0-9.]*' "$OUT_DIR/$b.txt" 2>/dev/null \
        | grep -o 'syscalls_per_commit=[0-9.]*' | cut -d= -f2 | sort -g | tail -1)
  # Pipelined-boundary fields (the `#json socket_pipeline` lines): the
  # deepest depth swept and the cache-push yield at that depth. The
  # bytes/syscalls columns are re-pointed at the deepest cache_push=off
  # row — the pipelining win itself; the generic max-pick above would
  # record the depth-1 serialized baseline instead.
  mi=$(grep -o 'max_inflight=[0-9]*' "$OUT_DIR/$b.txt" 2>/dev/null \
       | cut -d= -f2 | sort -g | tail -1)
  pnc=$(grep -o 'pushed_nodes_per_commit=[0-9.]*' "$OUT_DIR/$b.txt" 2>/dev/null \
        | cut -d= -f2 | sort -g | tail -1)
  if [ -n "$mi" ]; then
    deep=$(grep -o 'max_inflight=[0-9]* cache_push=off.*' "$OUT_DIR/$b.txt" \
             2>/dev/null | sort -t= -k2 -g | tail -1)
    if [ -n "$deep" ]; then
      bpr=$(echo "$deep" | grep -o 'bytes_per_rpc=[0-9.]*' | cut -d= -f2)
      spc=$(echo "$deep" | grep -o 'syscalls_per_commit=[0-9.]*' | cut -d= -f2)
    fi
  fi
  {
    echo "    {"
    echo "      \"bench\": \"$b\","
    echo "      \"status\": \"$status\","
    echo "      \"threads\": \"$threads\","
    echo "      \"transport\": \"$(bench_transport "$b")\","
    [ -n "$cpf" ] && echo "      \"commits_per_fsync\": $cpf,"
    [ -n "$window" ] && echo "      \"publish_window_micros\": $window,"
    [ -n "$bpr" ] && echo "      \"bytes_per_rpc\": $bpr,"
    [ -n "$spc" ] && echo "      \"syscalls_per_commit\": $spc,"
    [ -n "$mi" ] && echo "      \"max_inflight\": $mi,"
    [ -n "$pnc" ] && echo "      \"pushed_nodes_per_commit\": $pnc,"
    echo "      \"wall_seconds\": $secs,"
    echo "      \"output\": \"$OUT_DIR/$b.txt\""
    echo "    }"
  } >> "$OUT"
done

{
  echo "  ]"
  echo "}"
} >> "$OUT"

echo "wrote $OUT" >&2
exit $failed
